#include "core/budget_ledger.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <set>
#include <vector>

#include "common/fault.h"
#include "common/logging.h"
#include "telemetry/telemetry.h"

namespace ulpdp {

namespace {

constexpr uint32_t kRecordMagic = 0x554C4452; // "ULDR"
constexpr uint32_t kHeaderMagic = 0x554C4248; // "ULBH"
constexpr uint8_t kTypeSpend = 1;
constexpr uint8_t kTypeCheckpoint = 2;
constexpr uint8_t kFlagCacheValid = 1;
constexpr uint8_t kCommitByte = 0xC3;
constexpr uint8_t kSupersededByte = 0x00;

// Record slot offsets (see budget_ledger.h file comment).
constexpr uint32_t kOffMagic = 0;
constexpr uint32_t kOffType = 4;
constexpr uint32_t kOffFlags = 5;
constexpr uint32_t kOffSeq = 8;
constexpr uint32_t kOffPayload = 16;
constexpr uint32_t kOffAux = 24;
constexpr uint32_t kOffCrc = 32;
constexpr uint32_t kOffCommit = 36;
constexpr uint32_t kOffSupersede = 37;

// Block header offsets.
constexpr uint32_t kHdrOffMagic = 0;
constexpr uint32_t kHdrOffAllocSeq = 4;
constexpr uint32_t kHdrOffCrc = 12;

void
put32(uint8_t *p, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<uint8_t>(v >> (8 * i));
}

void
put64(uint8_t *p, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<uint8_t>(v >> (8 * i));
}

uint32_t
get32(const uint8_t *p)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(p[i]) << (8 * i);
    return v;
}

uint64_t
get64(const uint8_t *p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(p[i]) << (8 * i);
    return v;
}

uint64_t
doubleBits(double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    return bits;
}

double
bitsDouble(uint64_t bits)
{
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

/** The ledger's exported telemetry surface (docs/METRICS.md). */
struct LedgerMetrics
{
    Counter &spends = telemetry::registry().counter(
        "ulpdp_ledger_spends_total",
        "Spend records durably journaled before output release",
        "records");
    Counter &checkpoints = telemetry::registry().counter(
        "ulpdp_ledger_checkpoints_total",
        "Two-phase checkpoints committed to the flash journal",
        "checkpoints");
    Counter &rotations = telemetry::registry().counter(
        "ulpdp_ledger_rotations_total",
        "Journal rotations (least-worn block erased and made current)",
        "rotations");
    Counter &recoveries = telemetry::registry().counter(
        "ulpdp_ledger_recoveries_total",
        "Mounts that replayed a non-empty journal",
        "mounts");
    Counter &torn = telemetry::registry().counter(
        "ulpdp_ledger_torn_records_total",
        "Torn/corrupt records rejected and charged fail-secure",
        "records");
    Counter &unrecoverable = telemetry::registry().counter(
        "ulpdp_ledger_unrecoverable_mounts_total",
        "Mounts that halted with zero remaining budget",
        "mounts");
    Counter &journal_bytes = telemetry::registry().counter(
        "ulpdp_ledger_journal_bytes_total",
        "Bytes programmed into the flash journal",
        "bytes");
    Gauge &max_wear = telemetry::registry().gauge(
        "ulpdp_ledger_max_erase_count",
        "Highest per-block erase count of the journal flash",
        "erases");
};

LedgerMetrics &
ledgerMetrics()
{
    static LedgerMetrics m;
    return m;
}

} // anonymous namespace

struct BudgetLedger::ParsedRecord
{
    enum class State : uint8_t
    {
        Free,  //!< every byte of the slot senses erased
        Valid, //!< CRC-sealed body reads back intact
        Torn,  //!< partially programmed / corrupt: ambiguous
    };

    State state = State::Free;
    uint8_t type = 0;
    uint8_t flags = 0;
    uint64_t seq = 0;
    uint64_t payload = 0;
    uint64_t aux = 0;
    bool committed = false;
    bool superseded = false;
};

BudgetLedger::BudgetLedger(FlashDevice &flash,
                           const BudgetLedgerConfig &config)
    : flash_(flash), config_(config)
{
    const FlashGeometry &g = flash_.geometry();
    if (g.block_count < 2)
        fatal("BudgetLedger: need >= 2 erase blocks for rotation");
    if (g.block_size < kHeaderSize + 2 * kRecordSize)
        fatal("BudgetLedger: block size %u cannot hold a header and "
              "two records", g.block_size);
    if (!(config_.initial_budget > 0.0))
        fatal("BudgetLedger: initial budget must be positive");
    if (!(config_.max_record_loss > 0.0))
        fatal("BudgetLedger: max_record_loss must be positive (it is "
              "the fail-secure charge for an ambiguous record)");
}

bool
BudgetLedger::programCounted(uint64_t addr, const void *src,
                             size_t len)
{
    bool ok = flash_.program(addr, src, len);
    stats_.journal_bytes_written += len;
    if (telemetry::enabled())
        ledgerMetrics().journal_bytes.inc(len);
    return ok;
}

bool
BudgetLedger::writeRecordAt(uint64_t addr, uint8_t type,
                            uint8_t flags, uint64_t seq,
                            uint64_t payload, uint64_t aux)
{
    uint8_t body[kBodySize];
    std::memset(body, 0xFF, sizeof body);
    put32(body + kOffMagic, kRecordMagic);
    body[kOffType] = type;
    body[kOffFlags] = flags;
    put64(body + kOffSeq, seq);
    put64(body + kOffPayload, payload);
    put64(body + kOffAux, aux);
    put32(body + kOffCrc, crc32(body, kOffCrc));

    if (!programCounted(addr, body, sizeof body))
        return false;
    uint8_t commit = kCommitByte;
    return programCounted(addr + kOffCommit, &commit, 1);
}

BudgetLedger::ParsedRecord
BudgetLedger::parseSlot(uint64_t addr) const
{
    uint8_t slot[kRecordSize];
    flash_.read(addr, slot, sizeof slot);

    ParsedRecord rec;
    bool all_erased = true;
    for (uint8_t b : slot) {
        if (b != 0xFF) {
            all_erased = false;
            break;
        }
    }
    if (all_erased)
        return rec; // Free

    if (get32(slot + kOffMagic) != kRecordMagic ||
        get32(slot + kOffCrc) != crc32(slot, kOffCrc)) {
        rec.state = ParsedRecord::State::Torn;
        return rec;
    }
    rec.state = ParsedRecord::State::Valid;
    rec.type = slot[kOffType];
    rec.flags = slot[kOffFlags];
    rec.seq = get64(slot + kOffSeq);
    rec.payload = get64(slot + kOffPayload);
    rec.aux = get64(slot + kOffAux);
    rec.committed = slot[kOffCommit] == kCommitByte;
    rec.superseded = slot[kOffSupersede] != 0xFF;
    if (rec.type != kTypeSpend && rec.type != kTypeCheckpoint)
        rec.state = ParsedRecord::State::Torn; // unknown layout
    return rec;
}

void
BudgetLedger::charge(double loss)
{
    spent_lifetime_ += loss;
    remaining_ = std::max(0.0, remaining_ - loss);
}

bool
BudgetLedger::mount()
{
    const FlashGeometry &g = flash_.geometry();
    mounted_ = false;
    halted_ = false;
    cache_.reset();
    remaining_ = 0.0;
    spent_lifetime_ = 0.0;
    live_cp_addr_ = ~uint64_t{0};

    if (!flash_.alive()) {
        warn("BudgetLedger: mount on a powered-down device");
        return false;
    }

    // Scan block headers and order the valid ones by allocation
    // sequence -- that is journal order, whatever physical block the
    // wear leveler put each segment in.
    struct BlockInfo
    {
        uint32_t block;
        uint64_t alloc_seq;
    };
    std::vector<BlockInfo> order;
    bool any_data = false;
    uint64_t max_alloc = 0;
    for (uint32_t b = 0; b < g.block_count; ++b) {
        uint8_t hdr[kHeaderSize];
        flash_.read(static_cast<uint64_t>(b) * g.block_size, hdr,
                    sizeof hdr);
        bool erased_hdr = true;
        for (uint8_t byte : hdr) {
            if (byte != 0xFF) {
                erased_hdr = false;
                break;
            }
        }
        if (!erased_hdr)
            any_data = true;
        if (erased_hdr)
            continue;
        if (get32(hdr + kHdrOffMagic) == kHeaderMagic &&
            get32(hdr + kHdrOffCrc) == crc32(hdr, kHdrOffCrc)) {
            uint64_t alloc = get64(hdr + kHdrOffAllocSeq);
            order.push_back({b, alloc});
            max_alloc = std::max(max_alloc, alloc);
        }
    }
    if (!any_data) {
        // Headers were erased; the data area might still hold bits
        // (e.g. a block whose header was never written). Check.
        std::vector<uint8_t> blk(g.block_size);
        for (uint32_t b = 0; b < g.block_count && !any_data; ++b) {
            flash_.read(static_cast<uint64_t>(b) * g.block_size,
                        blk.data(), blk.size());
            for (uint8_t byte : blk) {
                if (byte != 0xFF) {
                    any_data = true;
                    break;
                }
            }
        }
    }

    auto failSecureHalt = [&](const char *why) {
        warn("BudgetLedger: %s; halting with zero remaining budget",
             why);
        halted_ = true;
        remaining_ = 0.0;
        spent_lifetime_ = config_.initial_budget;
        mounted_ = true;
        ++stats_.unrecoverable_mounts;
        if (telemetry::enabled())
            ledgerMetrics().unrecoverable.inc();
        return false;
    };

    if (order.empty()) {
        if (any_data) {
            // Bits on flash but no valid block header. The one benign
            // shape is a power loss that cut the very first format:
            // a torn *header* with every record slot still erased --
            // no spend can have been journaled, because spends only
            // append after the header commits. Anything in a record
            // slot could be a spend, so that stays unrecoverable.
            bool slot_bits = false;
            std::vector<uint8_t> blk(g.block_size);
            for (uint32_t b = 0; b < g.block_count && !slot_bits;
                 ++b) {
                flash_.read(static_cast<uint64_t>(b) * g.block_size,
                            blk.data(), blk.size());
                for (uint32_t off = kHeaderSize; off < g.block_size;
                     ++off) {
                    if (blk[off] != 0xFF) {
                        slot_bits = true;
                        break;
                    }
                }
            }
            if (slot_bits) {
                // Could be a foreign image, a header shot by stuck-at
                // faults, or erased spends -- unknowable, fail secure.
                return failSecureHalt("no valid block header over a "
                                      "non-empty journal");
            }
            // Scrub the torn header(s) and fall through to format.
            for (uint32_t b = 0; b < g.block_count; ++b) {
                uint8_t hdr[kHeaderSize];
                flash_.read(static_cast<uint64_t>(b) * g.block_size,
                            hdr, sizeof hdr);
                bool dirty = false;
                for (uint8_t byte : hdr)
                    dirty |= byte != 0xFF;
                if (dirty && !flash_.erase(b))
                    return false; // cut again; retry next boot
            }
        }
        // Factory-fresh part: format and seed the genesis checkpoint.
        remaining_ = config_.initial_budget;
        current_block_ = 0;
        append_off_ = kHeaderSize;
        next_seq_ = 1;
        next_alloc_seq_ = 1;
        uint8_t hdr[kHeaderSize];
        std::memset(hdr, 0xFF, sizeof hdr);
        put32(hdr + kHdrOffMagic, kHeaderMagic);
        put64(hdr + kHdrOffAllocSeq, next_alloc_seq_);
        put32(hdr + kHdrOffCrc, crc32(hdr, kHdrOffCrc));
        if (!programCounted(0, hdr, sizeof hdr))
            return false; // power lost during format; retry next boot
        ++next_alloc_seq_;
        uint64_t cp_addr = append_off_;
        if (!writeRecordAt(cp_addr, kTypeCheckpoint, 0, next_seq_,
                           doubleBits(remaining_), 0))
            return false;
        live_cp_addr_ = cp_addr;
        ++next_seq_;
        append_off_ += kRecordSize;
        ++stats_.checkpoints_committed;
        mounted_ = true;
        return true;
    }

    std::sort(order.begin(), order.end(),
              [](const BlockInfo &a, const BlockInfo &b) {
                  return a.alloc_seq < b.alloc_seq;
              });

    // One pass over every slot of every journal segment, in journal
    // order. Everything ambiguous is counted; nothing is trusted
    // twice.
    struct Seen
    {
        ParsedRecord rec;
        uint64_t addr;
    };
    std::vector<Seen> valid;
    uint64_t torn = 0;
    for (const BlockInfo &bi : order) {
        uint64_t base = static_cast<uint64_t>(bi.block) * g.block_size;
        for (uint32_t off = kHeaderSize;
             off + kRecordSize <= g.block_size; off += kRecordSize) {
            ParsedRecord rec = parseSlot(base + off);
            if (rec.state == ParsedRecord::State::Free)
                continue; // keep scanning: stuck bits must not hide
                          // records behind a fake gap
            if (rec.state == ParsedRecord::State::Torn) {
                ++torn;
                continue;
            }
            valid.push_back({rec, base + off});
        }
    }

    // Latest checkpoint wins. The supersede byte is diagnostic here:
    // selection is by sequence number, which is monotone by
    // construction, so "write-new-then-invalidate-old" cut between
    // its phases still resolves to the newer state.
    const Seen *best_cp = nullptr;
    uint64_t live_cps = 0;
    for (const Seen &s : valid) {
        if (s.rec.type != kTypeCheckpoint)
            continue;
        double rem = bitsDouble(s.rec.payload);
        if (!std::isfinite(rem) || rem < 0.0) {
            ++torn; // checkpoint with impossible content
            continue;
        }
        if (!s.rec.superseded)
            ++live_cps;
        if (best_cp == nullptr || s.rec.seq > best_cp->rec.seq)
            best_cp = &s;
    }
    if (live_cps > 1)
        ++stats_.dual_checkpoint_recoveries;

    uint64_t cp_seq = 0;
    uint64_t max_seq = 0;
    uint64_t spend_count = 0;
    for (const Seen &s : valid) {
        max_seq = std::max(max_seq, s.rec.seq);
        if (s.rec.type == kTypeSpend)
            ++spend_count;
    }

    if (best_cp == nullptr) {
        // No checkpoint anchors the journal. The only benign shape is
        // a crash during format: a lone header, at most one torn
        // record (the cut genesis checkpoint), zero spends. Anything
        // else means spends may have been erased with their covering
        // checkpoint -- unknowable, so unrecoverable.
        if (spend_count > 0 || torn > 1) {
            stats_.torn_records += torn;
            return failSecureHalt("journal holds records but no "
                                  "valid checkpoint");
        }
        remaining_ = config_.initial_budget;
    } else {
        remaining_ = std::min(bitsDouble(best_cp->rec.payload),
                              config_.initial_budget);
        cp_seq = best_cp->rec.seq;
        live_cp_addr_ = best_cp->addr;
        if (best_cp->rec.flags & kFlagCacheValid) {
            double cached = bitsDouble(best_cp->rec.aux);
            if (std::isfinite(cached))
                cache_ = cached;
        }
    }

    // Replay the spends the checkpoint does not cover. Duplicates and
    // out-of-order records are each charged anyway: over-counting is
    // the safe direction, and the anomaly counters surface the fault.
    std::set<uint64_t> applied;
    uint64_t last_seq = 0;
    for (const Seen &s : valid) {
        if (s.rec.seq < last_seq)
            ++stats_.out_of_order_records;
        last_seq = std::max(last_seq, s.rec.seq);
        if (s.rec.type != kTypeSpend || s.rec.seq <= cp_seq)
            continue;
        if (!applied.insert(s.rec.seq).second)
            ++stats_.duplicate_records;
        if (!s.rec.committed)
            ++stats_.uncommitted_accepted;
        double loss = bitsDouble(s.rec.payload);
        if (!std::isfinite(loss) || loss < 0.0) {
            ++torn; // spend with impossible content
            continue;
        }
        charge(loss);
    }
    for (uint64_t i = 0; i < torn; ++i)
        charge(config_.max_record_loss);
    stats_.torn_records += torn;

    next_seq_ = std::max(max_seq, cp_seq) + 1;
    next_alloc_seq_ = max_alloc + 1;

    // Resume appending in the newest segment: the slot right after
    // the last non-free one. A torn slot is consumed (its bits are
    // gone); a full block rotates on the next append.
    current_block_ = order.back().block;
    uint64_t base =
        static_cast<uint64_t>(current_block_) * g.block_size;
    append_off_ = kHeaderSize;
    for (uint32_t off = kHeaderSize;
         off + kRecordSize <= g.block_size; off += kRecordSize) {
        if (parseSlot(base + off).state != ParsedRecord::State::Free)
            append_off_ = off + kRecordSize;
    }

    if (!valid.empty() || torn > 0) {
        ++stats_.recoveries;
        if (telemetry::enabled()) {
            LedgerMetrics &m = ledgerMetrics();
            m.recoveries.inc();
            if (torn > 0)
                m.torn.inc(torn);
        }
    }
    mounted_ = true;
    return true;
}

bool
BudgetLedger::rotate()
{
    const FlashGeometry &g = flash_.geometry();

    // Wear leveling: the victim is the least-worn block other than
    // the current one (ties break to the lowest index for replay
    // determinism). Every block the victim could be only holds
    // records already summarized by the live checkpoint, so erasing
    // it never orphans a spend.
    uint32_t victim = current_block_ == 0 ? 1 : 0;
    for (uint32_t b = 0; b < g.block_count; ++b) {
        if (b == current_block_)
            continue;
        if (flash_.eraseCount(b) < flash_.eraseCount(victim))
            victim = b;
    }

    uint64_t base = static_cast<uint64_t>(victim) * g.block_size;
    std::vector<uint8_t> blk(g.block_size);
    flash_.read(base, blk.data(), blk.size());
    bool clean = std::all_of(blk.begin(), blk.end(),
                             [](uint8_t b) { return b == 0xFF; });
    if (!clean && !flash_.erase(victim))
        return false;

    uint8_t hdr[kHeaderSize];
    std::memset(hdr, 0xFF, sizeof hdr);
    put32(hdr + kHdrOffMagic, kHeaderMagic);
    put64(hdr + kHdrOffAllocSeq, next_alloc_seq_);
    put32(hdr + kHdrOffCrc, crc32(hdr, kHdrOffCrc));
    if (!programCounted(base, hdr, sizeof hdr))
        return false;
    ++next_alloc_seq_;

    current_block_ = victim;
    append_off_ = kHeaderSize;

    // Fresh checkpoint first: from this instant the old segments are
    // garbage and any of them may be the next victim.
    uint8_t flags = cache_.has_value() ? kFlagCacheValid : 0;
    uint64_t cp_addr = base + append_off_;
    if (!writeRecordAt(cp_addr, kTypeCheckpoint, flags, next_seq_,
                       doubleBits(remaining_),
                       doubleBits(cache_.value_or(0.0))))
        return false;
    ++next_seq_;
    append_off_ += kRecordSize;
    ++stats_.rotations;
    ++stats_.checkpoints_committed;
    if (telemetry::enabled()) {
        LedgerMetrics &m = ledgerMetrics();
        m.rotations.inc();
        m.checkpoints.inc();
        uint64_t worst = 0;
        for (uint32_t b = 0; b < g.block_count; ++b)
            worst = std::max(worst, flash_.eraseCount(b));
        m.max_wear.set(static_cast<double>(worst));
    }

    uint64_t old_cp = live_cp_addr_;
    live_cp_addr_ = cp_addr;
    if (old_cp != ~uint64_t{0}) {
        uint8_t dead = kSupersededByte;
        if (!programCounted(old_cp + kOffSupersede, &dead, 1))
            return false;
    }
    return true;
}

bool
BudgetLedger::appendRecord(uint8_t type, uint8_t flags,
                           uint64_t payload, uint64_t aux)
{
    const FlashGeometry &g = flash_.geometry();
    if (append_off_ + kRecordSize > g.block_size && !rotate())
        return false;
    uint64_t addr =
        static_cast<uint64_t>(current_block_) * g.block_size +
        append_off_;
    if (!writeRecordAt(addr, type, flags, next_seq_, payload, aux))
        return false;
    ++next_seq_;
    append_off_ += kRecordSize;
    return true;
}

bool
BudgetLedger::journalSpend(double loss)
{
    if (!mounted_ || halted_)
        return false;
    ULPDP_ASSERT(std::isfinite(loss) && loss >= 0.0);
    if (!appendRecord(kTypeSpend, 0, doubleBits(loss), 0))
        return false;
    charge(loss);
    ++stats_.spends_journaled;
    if (telemetry::enabled())
        ledgerMetrics().spends.inc();
    return true;
}

bool
BudgetLedger::commitCheckpoint(double remaining,
                               const std::optional<double> &cache)
{
    if (!mounted_ || halted_)
        return false;
    if (!(remaining >= 0.0))
        remaining = 0.0;
    remaining_ = std::min(remaining, config_.initial_budget);
    cache_ = cache;

    const FlashGeometry &g = flash_.geometry();
    if (append_off_ + kRecordSize > g.block_size) {
        // Rotation writes the checkpoint itself (it must: from the
        // erase on, the new block is the only anchor).
        return rotate();
    }

    uint8_t flags = cache_.has_value() ? kFlagCacheValid : 0;
    uint64_t cp_addr =
        static_cast<uint64_t>(current_block_) * g.block_size +
        append_off_;
    if (!writeRecordAt(cp_addr, kTypeCheckpoint, flags, next_seq_,
                       doubleBits(remaining_),
                       doubleBits(cache_.value_or(0.0))))
        return false;
    ++next_seq_;
    append_off_ += kRecordSize;
    ++stats_.checkpoints_committed;
    if (telemetry::enabled())
        ledgerMetrics().checkpoints.inc();

    uint64_t old_cp = live_cp_addr_;
    live_cp_addr_ = cp_addr;
    if (old_cp != ~uint64_t{0}) {
        uint8_t dead = kSupersededByte;
        if (!programCounted(old_cp + kOffSupersede, &dead, 1))
            return false;
    }
    return true;
}

uint64_t
BudgetLedger::wearSpread() const
{
    const FlashGeometry &g = flash_.geometry();
    uint64_t mn = ~uint64_t{0};
    uint64_t mx = 0;
    for (uint32_t b = 0; b < g.block_count; ++b) {
        uint64_t c = flash_.eraseCount(b);
        mn = std::min(mn, c);
        mx = std::max(mx, c);
    }
    return mx - mn;
}

} // namespace ulpdp
