/**
 * @file
 * Abstract interface for local differential privacy mechanisms.
 *
 * A mechanism turns one true sensor reading into one noised report.
 * The four concrete mechanisms mirror the paper's four evaluation
 * settings (Tables II-V): IdealLaplaceMechanism, NaiveFxpMechanism
 * (the baseline that is *not* LDP), ResamplingMechanism and
 * ThresholdingMechanism; RandomizedResponse covers Section VI-E.
 */

#ifndef ULPDP_CORE_MECHANISM_H
#define ULPDP_CORE_MECHANISM_H

#include <cstdint>
#include <string>

#include "core/sensor_range.h"

namespace ulpdp {

/**
 * One noised report along with its per-report cost metadata.
 */
struct NoisedReport
{
    /** The value released to the untrusted consumer. */
    double value = 0.0;

    /**
     * Number of Laplace samples drawn to produce this report: 1 plus
     * the number of resamples. Determines noising latency (Fig. 11:
     * one cycle per extra sample).
     */
    uint64_t samples_drawn = 1;
};

/**
 * A local differential privacy mechanism: maps a true sensor reading
 * to a randomised report whose distribution hides the reading.
 */
class Mechanism
{
  public:
    virtual ~Mechanism() = default;

    /**
     * Noise one sensor reading.
     *
     * @param x True sensor value; must lie in range().
     * @return The released report and its sampling cost.
     */
    virtual NoisedReport noise(double x) = 0;

    /** Human-readable mechanism name (table row labels). */
    virtual std::string name() const = 0;

    /**
     * Whether this mechanism guarantees bounded privacy loss, i.e.
     * eps-LDP for some finite eps, as *implemented* (not just in the
     * idealised math). The naive fixed-point baseline returns false:
     * its worst-case loss is infinite (Section III-A3).
     */
    virtual bool guaranteesLdp() const = 0;

    /** The sensor range this mechanism was configured for. */
    virtual const SensorRange &range() const = 0;

    /** The privacy parameter eps the noise was scaled for. */
    virtual double epsilon() const = 0;
};

} // namespace ulpdp

#endif // ULPDP_CORE_MECHANISM_H
