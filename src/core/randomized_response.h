/**
 * @file
 * Randomized Response on the DP-Box datapath (Section VI-E).
 *
 * The paper reconfigures the DP-Box for categorical (binary) data "by
 * setting the threshold zero ... the data and the noised output are
 * both binary". With a zero-width window the clamp degenerates: every
 * noised output is pushed to the nearer range endpoint, i.e. the
 * device reports M when x + n lands above the midpoint and m
 * otherwise. That is classical randomized response with truth
 * probability p = Pr[|n| < d/2] + lower-tail symmetrics:
 *
 *   report truthfully with  p = 1 - q,   q = Pr[n crosses midpoint]
 *
 * For ideal Laplace noise with lambda = d/eps, q = exp(-eps/2)/2 and
 * the loss log((1-q)/q) = log(2 e^{eps/2} - 1) <= eps, so the
 * configuration is eps-LDP by construction. On the fixed-point RNG, q
 * is the exact tail mass of the PMF beyond d/2, which this class
 * computes so the loss claim holds for the *implemented* distribution
 * (tail quantization can push q to 0 -- infinite loss -- which is
 * detected and rejected at construction).
 */

#ifndef ULPDP_CORE_RANDOMIZED_RESPONSE_H
#define ULPDP_CORE_RANDOMIZED_RESPONSE_H

#include <memory>

#include "core/fxp_mechanism.h"
#include "rng/fxp_laplace_pmf.h"

namespace ulpdp {

/** Binary randomized response built from the DP-Box noising datapath. */
class RandomizedResponse : public FxpMechanismBase
{
  public:
    /**
     * @param params Fixed-point parameters; range.lo / range.hi are
     *        the two category encodings.
     */
    explicit RandomizedResponse(const FxpMechanismParams &params);

    /**
     * Noise one binary reading. @p x must equal (up to grid snap) one
     * of the two category encodings; the report is always one of them.
     */
    NoisedReport noise(double x) override;

    std::string name() const override { return "Randomized Response"; }
    bool guaranteesLdp() const override { return true; }

    /** Probability of reporting the *opposite* category. */
    double flipProbability() const { return flip_prob_; }

    /**
     * Exact worst-case privacy loss of the implemented distribution:
     * log((1 - q) / q).
     */
    double exactLoss() const;

    /**
     * Debias an observed fraction of hi-category reports into an
     * unbiased estimate of the true hi-category proportion:
     * p_hat = (f - q) / (1 - 2 q). The result is clamped to [0, 1].
     */
    double estimateProportion(double observed_hi_fraction) const;

  private:
    double flip_prob_;
};

} // namespace ulpdp

#endif // ULPDP_CORE_RANDOMIZED_RESPONSE_H
