/**
 * @file
 * Resampling mechanism (Section III-B1).
 *
 * When the noised output x + n falls outside the window
 * [m - n_th1, M + n_th1], the RNG redraws the noise until it lands
 * inside. Every input then shares the same output support, so the
 * privacy loss is bounded; the cost is a data-dependent number of
 * extra RNG cycles (Fig. 11) and slightly higher energy.
 */

#ifndef ULPDP_CORE_RESAMPLING_MECHANISM_H
#define ULPDP_CORE_RESAMPLING_MECHANISM_H

#include "core/fxp_mechanism.h"

namespace ulpdp {

/** Fixed-point Laplace mechanism with resampling range control. */
class ResamplingMechanism : public FxpMechanismBase
{
  public:
    /**
     * @param params Shared fixed-point parameters.
     * @param threshold_index Window half-extension n_th1 in Delta
     *        units: outputs are confined to
     *        [m - n_th1 * Delta, M + n_th1 * Delta]. Use
     *        ThresholdCalculator to pick it for a target loss bound.
     * @param max_attempts Panic guard: a window that no input can hit
     *        would make the hardware loop forever; the model gives up
     *        after this many redraws instead.
     */
    ResamplingMechanism(const FxpMechanismParams &params,
                        int64_t threshold_index,
                        uint64_t max_attempts = 1u << 20);

    NoisedReport noise(double x) override;
    std::string name() const override { return "Resampling"; }
    bool guaranteesLdp() const override { return true; }

    /**
     * Batch counterpart of noise(): release one report per reading
     * into @p out, bit-identical to calling noise(x[i]) in a loop
     * (same draws, same attempt accounting). The redraw loop itself
     * stays per-draw -- each redraw depends on the previous draw's
     * accept test, so a single device's stream is inherently
     * sequential -- but the window bounds and the per-report virtual
     * dispatch are hoisted. Fleet simulations that want loop-free
     * confined draws use BatchSampler::sampleTruncatedRect across
     * many nodes instead.
     */
    void sampleBatch(const double *x, double *out, size_t n);

    /** Window half-extension n_th1 in Delta units. */
    int64_t thresholdIndex() const { return threshold_index_; }

    /** Lowest releasable output index (m - n_th1). */
    int64_t windowLoIndex() const { return lo_index_ - threshold_index_; }

    /** Highest releasable output index (M + n_th1). */
    int64_t windowHiIndex() const { return hi_index_ + threshold_index_; }

    /** Total samples drawn across all noise() calls (energy proxy). */
    uint64_t totalSamplesDrawn() const { return total_samples_; }

    /** Total noise() calls served. */
    uint64_t totalReports() const { return total_reports_; }

    /** Average samples per report (1.0 means no resampling happened). */
    double averageSamplesPerReport() const;

  private:
    int64_t threshold_index_;
    uint64_t max_attempts_;
    uint64_t total_samples_ = 0;
    uint64_t total_reports_ = 0;
};

} // namespace ulpdp

#endif // ULPDP_CORE_RESAMPLING_MECHANISM_H
