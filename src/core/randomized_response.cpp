#include "core/randomized_response.h"

#include <cmath>

#include "common/logging.h"

namespace ulpdp {

RandomizedResponse::RandomizedResponse(const FxpMechanismParams &params)
    : FxpMechanismBase(params)
{
    // q = Pr[noise magnitude strictly beyond half the range], the
    // probability the noised value crosses the midpoint. Computed from
    // the exact PMF of the implemented RNG; outputs exactly on the
    // midpoint (index d/2 when the span is even) break toward the true
    // category, matching the ">" comparison in noise().
    FxpLaplacePmf pmf(params.rngConfig());
    int64_t span = params.rangeIndexSpan();
    int64_t cross = span / 2 + 1;
    flip_prob_ = pmf.tailMass(cross);
    if (flip_prob_ <= 0.0)
        fatal("RandomizedResponse: the fixed-point RNG assigns zero "
              "probability to crossing the midpoint (flip probability "
              "0) -- the implemented loss would be infinite. Increase "
              "uniform_bits or epsilon.");
}

NoisedReport
RandomizedResponse::noise(double x)
{
    int64_t xi = checkAndIndex(x);
    // Snap the input to the nearer category endpoint (binary data).
    int64_t mid2 = lo_index_ + hi_index_; // 2 * midpoint index
    xi = (2 * xi > mid2) ? hi_index_ : lo_index_;

    int64_t k = rng_.sampleIndex();
    int64_t yi = xi + k;
    // Degenerate clamp: report the endpoint the noised value is
    // nearer to; exact midpoint stays with the true category.
    int64_t report = (2 * yi > mid2)   ? hi_index_
                     : (2 * yi < mid2) ? lo_index_
                                       : xi;
    return NoisedReport{toValue(report), 1};
}

double
RandomizedResponse::exactLoss() const
{
    return std::log((1.0 - flip_prob_) / flip_prob_);
}

double
RandomizedResponse::estimateProportion(double observed_hi_fraction) const
{
    double q = flip_prob_;
    double est = (observed_hi_fraction - q) / (1.0 - 2.0 * q);
    if (est < 0.0)
        return 0.0;
    if (est > 1.0)
        return 1.0;
    return est;
}

} // namespace ulpdp
