#include "core/discrete_laplace.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "core/threshold_calc.h"

namespace ulpdp {

FxpMechanismParams
DiscreteLaplaceMechanism::resolveParams(const FxpMechanismParams &base,
                                        double loss_multiple)
{
    if (!(loss_multiple >= 1.0))
        fatal("DiscreteLaplaceMechanism: loss multiple must be >= 1, "
              "got %g", loss_multiple);

    FxpMechanismParams p = withFloorRounding(base);
    const double eps_t = loss_multiple * base.epsilon;
    const double penalty = std::log(2.0);
    if (!(eps_t > penalty))
        fatal("DiscreteLaplaceMechanism: loss target %g nats is at or "
              "below the ln 2 = %g zero-atom penalty of the "
              "truncating quantizer; the penalty is scale-invariant, "
              "so no scale meets the bound (raise eps or the loss "
              "multiple)", eps_t, penalty);

    // Continuous seed: the worst loss decomposes as (zero-atom
    // penalty) + (geometric term) = ln 2 + d / lambda_eff, so the
    // smallest workable inflation is eps / (eps_t - ln 2). Scales
    // below 1 mean the nominal lambda already clears the bound.
    p.lambda_scale =
        std::max(1.0, base.epsilon / (eps_t - penalty));

    // Exact refinement, same discipline as the bounded mechanism:
    // quantization perturbs every count ratio, so widen the scale
    // until the exact window search actually finds a threshold.
    for (int iter = 0; iter < 220; ++iter) {
        ThresholdCalculator calc(p);
        if (calc.exactIndex(RangeControl::Resampling, loss_multiple) >=
            0)
            return p;
        p.lambda_scale *= 1.01;
    }
    fatal("DiscreteLaplaceMechanism: no scale within ~8x of the "
          "continuous seed meets the %g loss bound (range width %g, "
          "eps %g, Bu %d)", eps_t, base.range.length(), base.epsilon,
          base.uniform_bits);
}

} // namespace ulpdp
