/**
 * @file
 * Mechanism registry: name-based factory + capability flags for every
 * LDP mechanism the system can provision.
 *
 * Before this registry, the resampling/thresholding pair was
 * hard-wired wherever a mechanism had to be chosen -- the DP-Box
 * command decoder, the fleet cohort planner, the utility benches --
 * so landing a new mechanism meant touching every hot path. The
 * registry inverts that: each mechanism registers once, under a
 * stable name, with
 *
 *  - capability flags (can the fleet batch path drive it? is its
 *    per-report latency input-independent? does it admit the Fig. 8
 *    loss-per-segment model? are its outputs confined to the sensor
 *    range?),
 *  - a *lowering* describing how the fleet hot loop executes it
 *    (resolved parameter block, window extension, truncated-draw vs
 *    clamp), so cohorts mix mechanisms while the hot loop itself
 *    stays mechanism-agnostic -- it only ever sees the lowered
 *    booleans it already had, and the bit-identical FleetReport
 *    fingerprint survives untouched,
 *  - a factory for the standalone mechanism object, and
 *  - a factory for the exact conditional output model, which is what
 *    the PMF certifier enumerates to machine-check Eq. (4).
 *
 * Registration implies certifiability: the CI certify job enumerates
 * every registered mechanism's output distribution at small Bu and
 * fails if any worst-case loss exceeds the bound, so a mechanism
 * cannot register here without passing the same gate (this is why
 * the naive baseline and the ideal float mechanism are deliberately
 * *not* registered -- one is not LDP, the other has no FxP PMF to
 * enumerate).
 */

#ifndef ULPDP_CORE_MECHANISM_REGISTRY_H
#define ULPDP_CORE_MECHANISM_REGISTRY_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/fxp_params.h"
#include "core/mechanism.h"
#include "core/output_model.h"

namespace ulpdp {

/** Capability flags a registered mechanism can advertise. */
namespace mechcap {

/** The fleet SIMD batch path can drive it (rect/truncated-rect
 *  draws over the shared sampling table). */
constexpr uint32_t kBatch = 1u << 0;

/** Per-report latency is input-independent (no timing channel). */
constexpr uint32_t kConstantTime = 1u << 1;

/** Admits the Fig. 8 loss-per-segment model (window-extension
 *  family: loss varies with the released segment). */
constexpr uint32_t kSegmentLoss = 1u << 2;

/** Outputs are confined to the sensor range itself (T = 0); the
 *  consumer never sees a value the sensor could not have read. */
constexpr uint32_t kBoundedOutput = 1u << 3;

} // namespace mechcap

/**
 * Everything a caller specifies to instantiate a mechanism by name.
 * The registry entry resolves the rest (thresholds, scale
 * corrections, rounding modes).
 */
struct MechanismSpec
{
    /** Base parameter block (range, eps, Bu, By, Delta, seed...). */
    FxpMechanismParams params;

    /** Per-query worst-case loss target, as a multiple of eps. */
    double loss_multiple = 2.0;

    /**
     * Window half-extension override in Delta units; negative means
     * "resolve via the exact search". Lowerings write the resolved
     * value back through MechanismLowering::threshold_index so
     * callers can reuse it without repeating the search.
     */
    int64_t threshold_index = -1;

    /** Fixed draw count K for the constant-time mechanism. */
    int batch_size = 4;

    /**
     * Build output models from the *enumerated* PMF (exact per-bin
     * URNG state counts) instead of the analytic closed form.
     * Requires params.uniform_bits <=
     * FxpLaplacePmf::kMaxEnumeratedBits (32); this is what the
     * certifier sets.
     */
    bool enumerate_pmf = false;

    /**
     * With enumerate_pmf: use the legacy per-state enumerator (walk
     * all 2^Bu URNG states) instead of the segment-rank engine.
     * Cross-check mode -- bit-identical results, 2^Bu cost, capped at
     * FxpLaplacePmf::kMaxLegacyEnumeratedBits (24).
     */
    bool legacy_enumerate = false;

    /** The noise PMF this spec implies (analytic or enumerated). */
    std::shared_ptr<const FxpLaplacePmf> makePmf() const;
};

/**
 * How the fleet hot loop executes a mechanism: a resolved parameter
 * block plus the two booleans the loop already branches on. Any
 * mechanism expressible this way runs on the existing batch path
 * without the loop learning its name.
 */
struct MechanismLowering
{
    /** Fully resolved parameters (rounding, lambda_scale applied). */
    FxpMechanismParams params;

    /** Window half-extension T in Delta units (>= 0). */
    int64_t threshold_index = 0;

    /** Draws come from the truncated rank view (confined draws). */
    bool truncated = false;

    /** One draw, clamped into the window afterwards. */
    bool clamp = false;
};

/** Process-wide mechanism registry. */
class MechanismRegistry
{
  public:
    /** One registered mechanism. */
    struct Entry
    {
        /** Stable lookup name (lowercase, hyphenated). */
        std::string name;

        /** OR of mechcap:: flags. */
        uint32_t caps = 0;

        /** One-line description for listings and manuals. */
        std::string summary;

        /**
         * Lower the spec for the fleet batch path, or an empty
         * function when the mechanism has no batch-path execution
         * (the fleet rejects such cohorts at plan time).
         */
        std::function<MechanismLowering(const MechanismSpec &)> lower;

        /** Build the standalone mechanism object. */
        std::function<std::unique_ptr<Mechanism>(const MechanismSpec &)>
            make;

        /** Build the exact conditional output model (what the
         *  certifier and the loss analyses enumerate). */
        std::function<std::unique_ptr<DiscreteOutputModel>(
                const MechanismSpec &)>
            model;

        /** Convenience: does this entry advertise all of @p mask? */
        bool hasCaps(uint32_t mask) const
        {
            return (caps & mask) == mask;
        }
    };

    /** The singleton, with the built-in mechanisms registered. */
    static MechanismRegistry &instance();

    /**
     * Register a mechanism. Duplicate names are a fatal user error
     * (silent shadowing would un-certify a certified name).
     */
    void add(Entry entry);

    /** Look up by name; nullptr when unknown. */
    const Entry *find(const std::string &name) const;

    /** Look up by name; unknown names are a fatal user error. */
    const Entry &at(const std::string &name) const;

    /** All registered names, in registration order. */
    std::vector<std::string> names() const;

    /** Names advertising every flag in @p required. */
    std::vector<std::string> namesWithCaps(uint32_t required) const;

  private:
    MechanismRegistry();

    std::vector<Entry> entries_;
};

} // namespace ulpdp

#endif // ULPDP_CORE_MECHANISM_REGISTRY_H
