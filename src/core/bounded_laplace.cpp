#include "core/bounded_laplace.h"

#include <cmath>
#include <memory>

#include "common/logging.h"
#include "core/budget.h"
#include "core/output_model.h"
#include "core/privacy_loss.h"

namespace ulpdp {

BoundedLaplaceMechanism::BoundedLaplaceMechanism(
        const FxpMechanismParams &params)
    : FxpMechanismBase(params), max_attempts_(1u << 20)
{
    // The corrected scale is b = lambda_scale * d / eps with
    // b > d / eps_t, so any value except the default 1.0 can be a
    // genuine resolution (at eps_t = 2 eps the fixed point lands
    // near 0.7). Exactly 1.0 is the unresolved default.
    if (params.lambda_scale <= 0.0 || params.lambda_scale == 1.0)
        fatal("BoundedLaplaceMechanism: lambda_scale %g carries no "
              "bounded correction; resolve the parameter block with "
              "BoundedLaplaceMechanism::resolveParams first",
              params.lambda_scale);
}

NoisedReport
BoundedLaplaceMechanism::noise(double x)
{
    int64_t xi = checkAndIndex(x);

    // T = 0: the release window is the sensor range itself. The
    // confined draw is the same primitive the budget controllers use
    // -- one truncated rank lookup on the fast path, accept-reject
    // with a degradation guard without it.
    uint64_t samples = 0;
    uint64_t overflows = 0;
    int64_t out = drawConfinedOutput(rng_, RangeControl::Resampling,
                                     xi, lo_index_, hi_index_,
                                     max_attempts_, samples, overflows,
                                     "BoundedLaplaceMechanism");
    NoisedReport report;
    report.value = toValue(out);
    report.samples_drawn = samples;
    return report;
}

double
BoundedLaplaceMechanism::holohanScale(double d, double eps)
{
    if (!(d > 0.0))
        fatal("BoundedLaplaceMechanism: range width must be positive, "
              "got %g", d);
    if (!(eps > 0.0))
        fatal("BoundedLaplaceMechanism: eps must be positive, got %g",
              eps);

    // Fixed-point iteration b <- d / (eps - ln dC(b)) from the
    // uncorrected seed b0 = d / eps. dC is decreasing in b, so the
    // map is monotone-decreasing; in the valid region it contracts
    // and a handful of iterations reach machine precision.
    double b = d / eps;
    for (int iter = 0; iter < 500; ++iter) {
        double dc = 2.0 / (1.0 + std::exp(-d / (2.0 * b)));
        double denom = eps - std::log(dc);
        if (!(denom > 0.0))
            fatal("BoundedLaplaceMechanism: eps = %g is below the "
                  "normalisation penalty ln dC = %g on range width "
                  "%g; no bounded scale exists", eps, std::log(dc), d);
        double next = d / denom;
        if (std::fabs(next - b) <= 1e-13 * b)
            return next;
        b = next;
    }
    warn("BoundedLaplaceMechanism: Holohan fixed point did not reach "
         "machine precision after 500 iterations (b = %g)", b);
    return b;
}

double
BoundedLaplaceMechanism::truncatedVariance(double b, double lo,
                                           double hi, double x)
{
    ULPDP_ASSERT(b > 0.0 && lo <= x && x <= hi);
    double A = (x - lo) / b;
    double B = (hi - x) / b;
    double ea = std::exp(-A);
    double eb = std::exp(-B);
    double C = 1.0 - 0.5 * (ea + eb);
    double M1 = 0.5 * b * (ea * (1.0 + A) - eb * (1.0 + B));
    double M2 = b * b * (2.0 - 0.5 * ea * (A * A + 2.0 * A + 2.0)
                             - 0.5 * eb * (B * B + 2.0 * B + 2.0));
    double mean = M1 / C;
    return M2 / C - mean * mean;
}

FxpMechanismParams
BoundedLaplaceMechanism::resolveParams(const FxpMechanismParams &base,
                                       double loss_multiple)
{
    if (!(loss_multiple >= 1.0))
        fatal("BoundedLaplaceMechanism: loss multiple must be >= 1, "
              "got %g", loss_multiple);

    FxpMechanismParams p = base;
    double d = base.range.length();
    double eps_t = loss_multiple * base.epsilon;

    // Continuous seed: the Holohan fixed point at the per-query
    // target eps_t. lambda() = lambda_scale * d / eps, so the scale
    // factor converting the nominal d / eps to b is b * eps / d.
    double b = holohanScale(d, eps_t);
    p.lambda_scale = b * base.epsilon / d;

    // The continuous argument ignores quantization: flooring URNG
    // states into Delta bins perturbs every probability ratio, and
    // Gazeau et al. show such rounding can inflate the loss without
    // bound. So trust nothing: verify the exact discrete model and
    // widen the scale until the enumerated worst case meets the
    // bound (same tolerance discipline as ThresholdCalculator).
    double bound = eps_t * (1.0 + 1e-9) + 1e-12;
    int64_t span = p.rangeIndexSpan();
    for (int iter = 0; iter < 220; ++iter) {
        auto pmf = std::make_shared<FxpLaplacePmf>(p.rngConfig());
        ResamplingOutputModel model(pmf, span, 0);
        LossReport rep = PrivacyLossAnalyzer::analyze(model);
        if (rep.bounded && rep.worst_case_loss <= bound)
            return p;
        p.lambda_scale *= 1.01;
    }
    fatal("BoundedLaplaceMechanism: no scale within ~8x of the "
          "Holohan seed meets the %g loss bound (range width %g, "
          "eps %g, Bu %d) -- the quantization grid is too coarse "
          "for a bounded release window",
          eps_t, d, base.epsilon, base.uniform_bits);
}

} // namespace ulpdp
