#include "core/budget.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstring>

#include "common/logging.h"
#include "core/budget_ledger.h"
#include "core/privacy_loss.h"
#include "rng/health.h"
#include "telemetry/telemetry.h"

namespace ulpdp {

namespace {

/**
 * The controller's exported surface, registered once on first use
 * (function-local static) and shared by every BudgetController in
 * the process -- a deployment's Algorithm 1 aggregate. Hot-path cost
 * when telemetry is on: a handful of relaxed fetch_adds per request.
 */
struct BudgetMetrics
{
    Counter &fresh = telemetry::registry().counter(
        "ulpdp_budget_fresh_reports_total",
        "Reports released with fresh noise by BudgetController",
        "reports");
    Counter &halts = telemetry::registry().counter(
        "ulpdp_budget_halt_replays_total",
        "Requests the Algorithm 1 halt served from the cached report",
        "reports");
    Counter &fail_secure = telemetry::registry().counter(
        "ulpdp_budget_fail_secure_reports_total",
        "Requests served from cache because a fault was latched",
        "reports");
    Counter &overflows = telemetry::registry().counter(
        "ulpdp_budget_resample_overflows_total",
        "Confined draws degraded to a window-edge clamp",
        "draws");
    Counter &replenishments = telemetry::registry().counter(
        "ulpdp_budget_replenishments_total",
        "Replenishment periods that restored the budget",
        "events");
    Sum &spend = telemetry::registry().sum(
        "ulpdp_budget_spend_nats_total",
        "Privacy loss charged across all fresh reports",
        "nats");
    LatencyHistogram &samples = telemetry::registry().histogram(
        "ulpdp_budget_samples_per_request",
        "Laplace samples drawn per fresh request (resampling redraws)",
        "samples", {1, 2, 4, 8, 16, 64, 1024});
};

BudgetMetrics &
budgetMetrics()
{
    static BudgetMetrics m;
    return m;
}

} // anonymous namespace

int64_t
drawConfinedOutput(FxpLaplaceRng &rng, RangeControl kind, int64_t xi,
                   int64_t win_lo, int64_t win_hi,
                   uint64_t attempt_limit, uint64_t &samples,
                   uint64_t &overflows, const char *who)
{
    ULPDP_ASSERT(win_lo <= xi && xi <= win_hi);

    if (kind == RangeControl::Thresholding) {
        samples = 1;
        return std::clamp(xi + rng.sampleIndexFast(), win_lo, win_hi);
    }

    if (rng.fastPathEnabled()) {
        // Truncated direct inversion: one uniform rank over the URNG
        // states whose output lands inside the window -- the exact
        // accept-reject conditional distribution without the redraw
        // loop.
        samples = 1;
        int64_t k;
        if (rng.sampleIndexTruncated(win_lo - xi, win_hi - xi, k))
            return xi + k;
        if (!rng.integrityFault()) {
            warn("%s: resampling window [%lld, %lld] holds no URNG "
                 "state; clamping at the window edge", who,
                 static_cast<long long>(win_lo),
                 static_cast<long long>(win_hi));
            ++overflows;
            return std::clamp(xi + rng.sampleIndexFast(), win_lo,
                              win_hi);
        }
        // The truncated draw tripped an integrity check and the
        // table is now quarantined: fall through to the naive
        // accept-reject loop, which runs entirely on the log
        // datapath and never touches the suspect memory.
    }

    uint64_t attempts = 0;
    while (true) {
        ++attempts;
        int64_t yi = xi + rng.sampleIndex();
        if (yi >= win_lo && yi <= win_hi) {
            samples = attempts;
            return yi;
        }
        if (attempts >= attempt_limit) {
            // A mis-provisioned window must not hang the device:
            // report a still window-bounded value instead.
            warn("%s: no accepted sample after %llu redraws "
                 "(window [%lld, %lld]); clamping at the window edge",
                 who, static_cast<unsigned long long>(attempts),
                 static_cast<long long>(win_lo),
                 static_cast<long long>(win_hi));
            ++overflows;
            samples = attempts;
            return std::clamp(yi, win_lo, win_hi);
        }
    }
}

std::vector<BudgetSegment>
LossSegments::compute(const ThresholdCalculator &calc, RangeControl kind,
                      const std::vector<double> &loss_multiples)
{
    if (loss_multiples.empty())
        fatal("LossSegments: need at least one loss multiple");
    for (size_t i = 0; i < loss_multiples.size(); ++i) {
        if (!(loss_multiples[i] > 1.0))
            fatal("LossSegments: loss multiples must exceed 1, got %g",
                  loss_multiples[i]);
        if (i > 0 && !(loss_multiples[i] > loss_multiples[i - 1]))
            fatal("LossSegments: loss multiples must be strictly "
                  "increasing");
    }

    std::vector<BudgetSegment> segments;

    // Central segment: outputs inside [m, M] cost the RNG's intrinsic
    // loss.
    BudgetSegment central;
    central.threshold_index = 0;
    central.loss = centralLoss(calc, kind);
    segments.push_back(central);

    // Outer segments: widest extension whose outputs stay below each
    // level. The exact threshold search embodies precisely that.
    for (double n : loss_multiples) {
        int64_t t = calc.exactIndex(kind, n);
        if (t < 0) {
            warn("LossSegments: no window satisfies loss %g * eps; "
                 "segment skipped", n);
            continue;
        }
        BudgetSegment seg;
        seg.threshold_index = t;
        // Charge the exact loss of that window, not the level bound:
        // tighter metering at no extra hardware cost (the loss table
        // is precomputed at configuration time either way).
        seg.loss = std::max(calc.exactLossAt(kind, t), central.loss);
        if (seg.threshold_index <= segments.back().threshold_index)
            continue; // level too tight to widen the window further
        segments.push_back(seg);
    }
    return segments;
}

double
LossSegments::centralLoss(const ThresholdCalculator &calc,
                          RangeControl kind)
{
    // With extension 0 every output is inside [m, M]; for thresholding
    // the range endpoints become the clamp atoms, exactly as a
    // zero-extension device would behave.
    double loss = calc.exactLossAt(kind, 0);
    if (!std::isfinite(loss))
        fatal("LossSegments: central outputs already have unbounded "
              "loss; the RNG resolution is too coarse for this range");
    return loss;
}

uint32_t
BudgetCheckpoint::computeCrc() const
{
    // Every field before `crc`, in declaration order, no padding
    // (four 32/64-bit fields on natural alignment).
    return crc32(this, offsetof(BudgetCheckpoint, crc));
}

bool
BudgetCheckpoint::valid() const
{
    return magic == kMagic && crc == computeCrc();
}

BudgetController::BudgetController(const FxpMechanismParams &params,
                                   const BudgetControllerConfig &config)
    : params_(params), config_(config), rng_(params.rngConfig(),
                                             params.seed),
      budget_(config.initial_budget)
{
    if (!(config.initial_budget > 0.0))
        fatal("BudgetController: initial budget must be positive");
    if (config.segments.empty())
        fatal("BudgetController: need at least one segment");
    for (size_t i = 1; i < config.segments.size(); ++i) {
        if (config.segments[i].threshold_index <=
                config.segments[i - 1].threshold_index ||
            config.segments[i].loss < config.segments[i - 1].loss) {
            fatal("BudgetController: segments must have strictly "
                  "increasing thresholds and non-decreasing losses");
        }
    }

    double delta = params.resolvedDelta();
    lo_index_ = static_cast<int64_t>(std::llround(params.range.lo /
                                                  delta));
    hi_index_ = static_cast<int64_t>(std::llround(params.range.hi /
                                                  delta));
}

double
BudgetController::segmentLoss(int64_t extension) const
{
    for (const auto &seg : config_.segments) {
        if (extension <= seg.threshold_index)
            return seg.loss;
    }
    // Outside the outermost segment: callers clamp/resample before
    // classifying, so this indicates an internal bug.
    panic("BudgetController: output extension %lld beyond outermost "
          "segment", static_cast<long long>(extension));
}

const BudgetSegment *
BudgetController::affordableSegment() const
{
    // Losses are non-decreasing outward, so scan from the outermost
    // segment inward for the first the budget still covers.
    for (auto it = config_.segments.rbegin();
         it != config_.segments.rend(); ++it) {
        if (budgetCovers(budget_, it->loss))
            return &*it;
    }
    return nullptr;
}

BudgetResponse
BudgetController::request(double x)
{
    // Fail-secure gate, evaluated before Algorithm 1 even looks at
    // the budget: a latched fault, a tripped URNG health test, or a
    // failed periodic table scrub all mean the noise state cannot be
    // trusted, and an untrusted draw must never be released. The
    // cache is a function of already-released data, so replaying it
    // costs zero additional privacy regardless of how broken the
    // noise datapath is.
    if (config_.fail_secure) {
        if (fault_latched_)
            return serveCached();
        if (health_ != nullptr && health_->alarmed()) {
            ++fault_stats_.urng_health_alarms;
            latchFault("URNG continuous health test tripped");
            return serveCached();
        }
        if (config_.table_scrub_period > 0 &&
            ++requests_since_scrub_ >= config_.table_scrub_period) {
            requests_since_scrub_ = 0;
            if (!rng_.verifyTableIntegrity()) {
                ++fault_stats_.table_crc_failures;
                // The scrub already quarantined the table inside the
                // RNG; fold its detection into ours so the post-draw
                // check below does not double count it.
                rng_integrity_seen_ = rng_.integrityDetections();
                latchFault("sampler table CRC scrub failed");
                return serveCached();
            }
        }
    }

    // Algorithm 1 orders halt-then-serve: whether this request can be
    // afforded is decided from the budget alone, *before* any noise
    // is drawn. A halted request must not advance the URNG or burn
    // sampling energy -- and because the decision depends only on
    // already-public state (the budget is a function of previously
    // released outputs), the halt event itself leaks nothing about x.
    const BudgetSegment *afford = affordableSegment();
    if (afford == nullptr) {
        // Replay the cache. Before any fresh report exists, the range
        // midpoint is returned -- a constant, so it carries no
        // information about x.
        if (telemetry::enabled()) {
            budgetMetrics().halts.inc();
            telemetry::event(EventKind::HaltReplay,
                             fresh_reports_ + cache_hits_, 0.0);
        }
        return cachedResponse();
    }

    double delta = params_.resolvedDelta();
    int64_t xi = static_cast<int64_t>(std::llround(x / delta));
    xi = std::clamp(xi, lo_index_, hi_index_);

    // Confine the output to the widest window the budget can pay
    // for: every reachable segment is then affordable by
    // construction, so the charge below can never fail.
    int64_t outer = afford->threshold_index;
    int64_t win_lo = lo_index_ - outer;
    int64_t win_hi = hi_index_ + outer;

    uint64_t samples = 0;
    int64_t yi = drawConfinedOutput(rng_, config_.kind, xi, win_lo,
                                    win_hi,
                                    config_.resample_attempt_limit,
                                    samples, resample_overflows_,
                                    "BudgetController");
    fault_stats_.resample_overflows = resample_overflows_;

    // A lookup-time integrity fault during *this* draw means the
    // value in hand passed through suspect table state at least once
    // (the RNG recomputes through the log datapath, but fail-secure
    // hardware discards the whole transaction rather than reason
    // about which intermediate was poisoned).
    if (rng_.integrityDetections() > rng_integrity_seen_) {
        fault_stats_.table_bounds_faults +=
            rng_.integrityDetections() - rng_integrity_seen_;
        rng_integrity_seen_ = rng_.integrityDetections();
        if (config_.fail_secure) {
            latchFault("sampler table lookup integrity fault");
            return serveCached();
        }
    }

    int64_t ext = 0;
    if (yi < lo_index_)
        ext = lo_index_ - yi;
    else if (yi > hi_index_)
        ext = yi - hi_index_;
    double loss = segmentLoss(ext);
    ULPDP_ASSERT(budgetCovers(budget_, loss));

    // Durability gate: the spend must be on flash before the value
    // leaves the device. A failed append means the power is dying (or
    // the ledger is halted) -- withhold the fresh draw and serve the
    // cache, which is already-released data. The draw consumed RNG
    // state but released nothing, so no privacy was spent.
    if (ledger_ != nullptr && !ledger_->journalSpend(loss)) {
        ++fault_stats_.ledger_append_failures;
        latchFault("ledger append failed before output release");
        return serveCached();
    }

    BudgetResponse resp;
    resp.samples_drawn = samples;
    budget_ -= loss;
    resp.value = static_cast<double>(yi) * delta;
    resp.charged = loss;
    cache_ = resp.value;
    ++fresh_reports_;
    if (telemetry::enabled()) {
        BudgetMetrics &m = budgetMetrics();
        m.fresh.inc();
        m.spend.add(loss);
        m.samples.observe(static_cast<double>(samples));
        if (resample_overflows_ > overflows_reported_) {
            m.overflows.inc(resample_overflows_ -
                            overflows_reported_);
            telemetry::event(EventKind::ResampleOverflow,
                             fresh_reports_ + cache_hits_,
                             static_cast<double>(samples));
        }
        telemetry::event(EventKind::BudgetSpend,
                         fresh_reports_ + cache_hits_, loss);
    }
    overflows_reported_ = resample_overflows_;
    return resp;
}

BudgetResponse
BudgetController::cachedResponse()
{
    BudgetResponse resp;
    resp.value = cache_.value_or(params_.range.mid());
    resp.from_cache = true;
    resp.charged = 0.0;
    resp.samples_drawn = 0;
    ++cache_hits_;
    return resp;
}

BudgetResponse
BudgetController::serveCached()
{
    ++fault_stats_.fail_secure_reports;
    if (telemetry::enabled())
        budgetMetrics().fail_secure.inc();
    return cachedResponse();
}

void
BudgetController::latchFault(const char *what)
{
    if (!fault_latched_) {
        warn("BudgetController: %s; latching cache-only service",
             what);
        telemetry::event(
            EventKind::FaultLatch, fresh_reports_ + cache_hits_,
            static_cast<double>(fault_stats_.detections()));
    }
    fault_latched_ = true;
}

BudgetCheckpoint
BudgetController::checkpoint() const
{
    BudgetCheckpoint cp;
    cp.magic = BudgetCheckpoint::kMagic;
    cp.flags = cache_.has_value() ? 1u : 0u;
    std::memcpy(&cp.budget_bits, &budget_, sizeof budget_);
    double cached = cache_.value_or(0.0);
    std::memcpy(&cp.cache_bits, &cached, sizeof cached);
    cp.ticks_since_replenish = ticks_since_replenish_;
    cp.crc = cp.computeCrc();
    return cp;
}

bool
BudgetController::restoreFromCheckpoint(const BudgetCheckpoint &cp)
{
    if (!cp.valid()) {
        ++fault_stats_.checkpoint_restore_failures;
        warn("BudgetController: checkpoint rejected (%s); restoring "
             "to zero remaining budget",
             cp.magic == BudgetCheckpoint::kMagic ? "bad CRC"
                                                  : "bad magic");
        budget_ = 0.0;
        cache_.reset();
        ticks_since_replenish_ = 0;
        return false;
    }

    double saved;
    std::memcpy(&saved, &cp.budget_bits, sizeof saved);
    // NaN or negative collapses to zero; above-initial clamps down.
    // Then min() with the live value: a stale checkpoint (power cut
    // after a spend it never recorded) can only *reduce* spendable
    // budget, never hand back what was already used.
    if (!(saved >= 0.0))
        saved = 0.0;
    saved = std::min(saved, config_.initial_budget);
    budget_ = std::min(budget_, saved);

    if (cp.flags & 1u) {
        double cached;
        std::memcpy(&cached, &cp.cache_bits, sizeof cached);
        if (std::isfinite(cached))
            cache_ = cached;
    }

    // Same monotonicity for the replenishment timer: restoring a
    // *larger* tick count would bring the refill forward, so take the
    // minimum -- a restore can delay replenishment but never advance
    // it. (A freshly constructed controller sits at 0, so a restore
    // right after reset always restarts the timer.)
    ticks_since_replenish_ = std::min(ticks_since_replenish_,
                                      cp.ticks_since_replenish);
    return true;
}

bool
BudgetController::restoreFromLedger()
{
    if (ledger_ == nullptr)
        return false;
    if (ledger_->halted()) {
        ++fault_stats_.checkpoint_restore_failures;
        warn("BudgetController: ledger unrecoverable; restoring to "
             "zero remaining budget");
        budget_ = 0.0;
        cache_.reset();
        ticks_since_replenish_ = 0;
        return false;
    }
    // Same monotone rule as restoreFromCheckpoint(): the ledger can
    // only make the device more conservative, never hand back budget.
    double rem = ledger_->remaining();
    if (!(rem >= 0.0))
        rem = 0.0;
    budget_ = std::min(budget_, std::min(rem,
                                         config_.initial_budget));
    if (ledger_->cache().has_value() &&
        std::isfinite(*ledger_->cache()))
        cache_ = *ledger_->cache();
    return true;
}

bool
BudgetController::checkpointToLedger()
{
    if (ledger_ == nullptr)
        return false;
    return ledger_->commitCheckpoint(budget_, cache_);
}

void
BudgetController::advanceTime(uint64_t ticks)
{
    if (config_.replenish_period == 0)
        return;
    ticks_since_replenish_ += ticks;
    if (ticks_since_replenish_ >= config_.replenish_period) {
        ticks_since_replenish_ %= config_.replenish_period;
        budget_ = config_.initial_budget;
        // The refill is a policy event, not a spend: record it as a
        // checkpoint so recovery resumes from the replenished state
        // instead of replaying pre-refill spends against it.
        if (ledger_ != nullptr && !ledger_->halted())
            checkpointToLedger();
        if (telemetry::enabled()) {
            budgetMetrics().replenishments.inc();
            telemetry::event(EventKind::Replenish,
                             fresh_reports_ + cache_hits_, budget_);
        }
    }
}

double
BudgetController::spentSinceReplenish() const
{
    return config_.initial_budget - budget_;
}

} // namespace ulpdp
