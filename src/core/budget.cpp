#include "core/budget.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "core/privacy_loss.h"

namespace ulpdp {

std::vector<BudgetSegment>
LossSegments::compute(const ThresholdCalculator &calc, RangeControl kind,
                      const std::vector<double> &loss_multiples)
{
    if (loss_multiples.empty())
        fatal("LossSegments: need at least one loss multiple");
    for (size_t i = 0; i < loss_multiples.size(); ++i) {
        if (!(loss_multiples[i] > 1.0))
            fatal("LossSegments: loss multiples must exceed 1, got %g",
                  loss_multiples[i]);
        if (i > 0 && !(loss_multiples[i] > loss_multiples[i - 1]))
            fatal("LossSegments: loss multiples must be strictly "
                  "increasing");
    }

    std::vector<BudgetSegment> segments;

    // Central segment: outputs inside [m, M] cost the RNG's intrinsic
    // loss.
    BudgetSegment central;
    central.threshold_index = 0;
    central.loss = centralLoss(calc, kind);
    segments.push_back(central);

    // Outer segments: widest extension whose outputs stay below each
    // level. The exact threshold search embodies precisely that.
    for (double n : loss_multiples) {
        int64_t t = calc.exactIndex(kind, n);
        if (t < 0) {
            warn("LossSegments: no window satisfies loss %g * eps; "
                 "segment skipped", n);
            continue;
        }
        BudgetSegment seg;
        seg.threshold_index = t;
        // Charge the exact loss of that window, not the level bound:
        // tighter metering at no extra hardware cost (the loss table
        // is precomputed at configuration time either way).
        seg.loss = std::max(calc.exactLossAt(kind, t), central.loss);
        if (seg.threshold_index <= segments.back().threshold_index)
            continue; // level too tight to widen the window further
        segments.push_back(seg);
    }
    return segments;
}

double
LossSegments::centralLoss(const ThresholdCalculator &calc,
                          RangeControl kind)
{
    // With extension 0 every output is inside [m, M]; for thresholding
    // the range endpoints become the clamp atoms, exactly as a
    // zero-extension device would behave.
    double loss = calc.exactLossAt(kind, 0);
    if (!std::isfinite(loss))
        fatal("LossSegments: central outputs already have unbounded "
              "loss; the RNG resolution is too coarse for this range");
    return loss;
}

BudgetController::BudgetController(const FxpMechanismParams &params,
                                   const BudgetControllerConfig &config)
    : params_(params), config_(config), rng_(params.rngConfig(),
                                             params.seed),
      budget_(config.initial_budget)
{
    if (!(config.initial_budget > 0.0))
        fatal("BudgetController: initial budget must be positive");
    if (config.segments.empty())
        fatal("BudgetController: need at least one segment");
    for (size_t i = 1; i < config.segments.size(); ++i) {
        if (config.segments[i].threshold_index <=
                config.segments[i - 1].threshold_index ||
            config.segments[i].loss < config.segments[i - 1].loss) {
            fatal("BudgetController: segments must have strictly "
                  "increasing thresholds and non-decreasing losses");
        }
    }

    double delta = params.resolvedDelta();
    lo_index_ = static_cast<int64_t>(std::llround(params.range.lo /
                                                  delta));
    hi_index_ = static_cast<int64_t>(std::llround(params.range.hi /
                                                  delta));
}

double
BudgetController::segmentLoss(int64_t extension) const
{
    for (const auto &seg : config_.segments) {
        if (extension <= seg.threshold_index)
            return seg.loss;
    }
    // Outside the outermost segment: callers clamp/resample before
    // classifying, so this indicates an internal bug.
    panic("BudgetController: output extension %lld beyond outermost "
          "segment", static_cast<long long>(extension));
}

BudgetResponse
BudgetController::request(double x)
{
    double delta = params_.resolvedDelta();
    int64_t xi = static_cast<int64_t>(std::llround(x / delta));
    xi = std::clamp(xi, lo_index_, hi_index_);

    int64_t outer = config_.segments.back().threshold_index;
    int64_t win_lo = lo_index_ - outer;
    int64_t win_hi = hi_index_ + outer;

    // Draw the noised output according to the configured range
    // control. Resampling redraws; thresholding clamps.
    uint64_t samples = 0;
    int64_t yi = 0;
    if (config_.kind == RangeControl::Resampling) {
        while (true) {
            ++samples;
            if (samples > (uint64_t{1} << 20))
                panic("BudgetController: resampling never accepted");
            yi = xi + rng_.sampleIndex();
            if (yi >= win_lo && yi <= win_hi)
                break;
        }
    } else {
        samples = 1;
        yi = std::clamp(xi + rng_.sampleIndex(), win_lo, win_hi);
    }

    int64_t ext = 0;
    if (yi < lo_index_)
        ext = lo_index_ - yi;
    else if (yi > hi_index_)
        ext = yi - hi_index_;
    double loss = segmentLoss(ext);

    BudgetResponse resp;
    resp.samples_drawn = samples;

    if (budget_ + 1e-12 < loss) {
        // Budget cannot cover this report: replay the cache. Before
        // any fresh report exists, the range midpoint is returned --
        // a constant, so it carries no information about x.
        resp.value = cache_.value_or(params_.range.mid());
        resp.from_cache = true;
        resp.charged = 0.0;
        ++cache_hits_;
        return resp;
    }

    budget_ -= loss;
    resp.value = static_cast<double>(yi) * delta;
    resp.charged = loss;
    cache_ = resp.value;
    ++fresh_reports_;
    return resp;
}

void
BudgetController::advanceTime(uint64_t ticks)
{
    if (config_.replenish_period == 0)
        return;
    ticks_since_replenish_ += ticks;
    if (ticks_since_replenish_ >= config_.replenish_period) {
        ticks_since_replenish_ %= config_.replenish_period;
        budget_ = config_.initial_budget;
    }
}

double
BudgetController::spentSinceReplenish() const
{
    return config_.initial_budget - budget_;
}

} // namespace ulpdp
