/**
 * @file
 * Transaction tracing and invariant checking for the DP-Box model.
 *
 * Debugging a privacy device is unlike debugging a functional block:
 * a bug does not produce a wrong answer, it produces a *leak*, and
 * leaks are invisible in any single output. The tracer records every
 * port transaction (cycle, phase, command, input, ready, output,
 * budget) so a session can be audited after the fact, and the
 * checker validates the security invariants over the whole trace:
 *
 *  1. containment -- every ready output lies inside the clamp window
 *     implied by the range registers at that cycle;
 *  2. budget soundness -- the budget register never increases except
 *     across a replenishment boundary;
 *  3. phase discipline -- outputs only appear out of the noising
 *     phase, and initialization is never re-entered;
 *  4. fail-secure discipline -- once the device latched a fault,
 *     every subsequent ready output replays already-released data
 *     (the frozen last output, or the range midpoint when none
 *     exists), i.e. a latched device never leaks anything new.
 */

#ifndef ULPDP_DPBOX_TRACE_H
#define ULPDP_DPBOX_TRACE_H

#include <string>
#include <vector>

#include "dpbox/dpbox.h"

namespace ulpdp {

/** One recorded port transaction (state *after* the clock edge). */
struct DpBoxTraceEntry
{
    uint64_t cycle = 0;
    DpBoxPhase phase = DpBoxPhase::Initialization;
    DpBoxCommand command = DpBoxCommand::DoNothing;
    int64_t input = 0;
    bool ready = false;
    int64_t output = 0;
    int64_t range_lo = 0;
    int64_t range_hi = 0;
    double budget = 0.0;

    /** Cumulative fault detections at this edge (FaultStats sum). */
    uint64_t fault_detections = 0;

    /** Fail-secure latch state after this edge. */
    bool fault_latched = false;
};

/** Outcome of an invariant check over a trace. */
struct TraceCheckResult
{
    /** True when every invariant held. */
    bool ok = true;

    /** Description of the first violation (empty when ok). */
    std::string violation;
};

/** Records and audits DP-Box port transactions. */
class DpBoxTracer
{
  public:
    /** @param box Device to trace; must outlive the tracer. */
    explicit DpBoxTracer(DpBox &box);

    /** Forward one clock edge to the device and record it. */
    void step(DpBoxCommand cmd, int64_t input = 0);

    /** Recorded transactions, oldest first. */
    const std::vector<DpBoxTraceEntry> &trace() const
    {
        return trace_;
    }

    /** Drop the recorded history (device state is untouched). */
    void clear() { trace_.clear(); }

    /**
     * Run the invariant checks over the recorded trace.
     * See the file comment for the invariants.
     */
    TraceCheckResult check() const;

    /**
     * Render the last @p max_rows transactions as an aligned text
     * table (a poor man's waveform).
     */
    std::string toText(size_t max_rows = 32) const;

  private:
    DpBox &box_;
    std::vector<DpBoxTraceEntry> trace_;
};

} // namespace ulpdp

#endif // ULPDP_DPBOX_TRACE_H
