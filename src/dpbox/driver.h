/**
 * @file
 * Host-side driver for the DP-Box.
 *
 * Models the software half of the interface: the command sequences a
 * trusted boot loader (initialization) and an application (waiting /
 * noising) would issue over the 3-bit command port, with doubles
 * converted to the port's fixed-point words. All latency numbers come
 * from the device's own cycle counter.
 */

#ifndef ULPDP_DPBOX_DRIVER_H
#define ULPDP_DPBOX_DRIVER_H

#include "core/sensor_range.h"
#include "dpbox/dpbox.h"

namespace ulpdp {

/** One noising transaction as observed by the host. */
struct DpBoxResult
{
    /** Noised value, converted back to a double. */
    double value = 0.0;

    /** Device cycles from StartNoising to ready (2 + resamples). */
    uint64_t latency_cycles = 0;
};

/** Issues DP-Box command sequences on behalf of host software. */
class DpBoxDriver
{
  public:
    explicit DpBoxDriver(const DpBoxConfig &config);

    /**
     * Run the secure-boot initialization sequence: configure the
     * privacy budget and replenishment period, then seal them with
     * StartNoising. Must be called exactly once, first.
     *
     * @param budget Total privacy budget (nats of loss).
     * @param replenish_period Cycles between budget refills; 0 never.
     */
    void initialize(double budget, uint64_t replenish_period);

    /**
     * Configure noising parameters: epsilon (rounded to the nearest
     * power of two, Eq. 19 -- a warning is printed if it was not one)
     * and the sensor range registers.
     */
    void configure(double epsilon, const SensorRange &range);

    /** Select thresholding (true) or resampling (false). */
    void setThresholding(bool thresholding);

    /** Noise one sensor reading end to end. */
    DpBoxResult noise(double x);

    /** Epsilon actually in effect after power-of-two rounding. */
    double effectiveEpsilon() const;

    /** configure() calls whose epsilon had to be rounded to a power
     *  of two (each one also warns through common/logging). */
    uint64_t epsilonRoundingWarnings() const
    {
        return epsilon_rounding_warnings_;
    }

    /**
     * The device's fault counters with the driver's own contribution
     * (epsilon roundings) folded in -- the single FaultStats view a
     * deployment would export.
     */
    FaultStats faultStats() const;

    /** Direct access to the device model (tests, stats). */
    DpBox &device() { return box_; }
    const DpBox &device() const { return box_; }

  private:
    DpBox box_;
    bool initialized_ = false;
    bool configured_ = false;
    uint64_t epsilon_rounding_warnings_ = 0;
};

} // namespace ulpdp

#endif // ULPDP_DPBOX_DRIVER_H
