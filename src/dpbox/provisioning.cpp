#include "dpbox/provisioning.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"
#include "core/output_model.h"
#include "core/privacy_loss.h"

namespace ulpdp {

namespace {

/**
 * Pick the device fraction bits so the sensor range spans 64-128
 * quantization steps (clamped to frac_bits >= 0 for wide ranges).
 */
int
chooseFracBits(double range_length)
{
    double f = std::ceil(std::log2(64.0 / range_length));
    if (f < 0.0)
        return 0;
    if (f > 12.0)
        return 12;
    return static_cast<int>(f);
}

/** Build the analysis parameter block a plan implies. */
FxpMechanismParams
analysisParams(const SensorRange &range, double epsilon,
               int uniform_bits, int frac_bits)
{
    FxpMechanismParams p;
    p.range = range;
    p.epsilon = epsilon;
    p.uniform_bits = uniform_bits;
    // Output width: enough to cover the full noise support
    // lambda * Bu * ln 2 on the device grid.
    double lsb = std::ldexp(1.0, -frac_bits);
    double support = (range.length() / epsilon) * uniform_bits *
                     std::log(2.0) / lsb;
    int bits = 2;
    while (std::ldexp(1.0, bits - 1) <= support + 1.0 && bits < 31)
        ++bits;
    p.output_bits = bits + 1;
    p.delta = lsb;
    return p;
}

} // anonymous namespace

ProvisioningPlan
Provisioner::plan(const PrivacyIntent &intent)
{
    if (!(intent.epsilon > 0.0))
        fatal("Provisioner: epsilon must be positive, got %g",
              intent.epsilon);
    if (!(intent.loss_multiple > 1.0))
        fatal("Provisioner: loss_multiple must exceed 1, got %g",
              intent.loss_multiple);

    // Effective power-of-two epsilon (Eq. 19).
    int n_m = static_cast<int>(std::llrint(-std::log2(
        intent.epsilon)));
    n_m = std::clamp(n_m, 0, 16);
    double eff_eps = std::ldexp(1.0, -n_m);

    int frac_bits = chooseFracBits(intent.range.length());
    FxpMechanismParams params = analysisParams(
        intent.range, eff_eps, intent.uniform_bits, frac_bits);

    ThresholdCalculator calc(params);
    int64_t window = calc.exactIndex(intent.kind,
                                     intent.loss_multiple);
    if (window < 0)
        fatal("Provisioner: no window satisfies %g * eps at Bu = %d "
              "on this range; increase uniform_bits or relax the "
              "bound", intent.loss_multiple, intent.uniform_bits);
    double proven = calc.exactLossAt(intent.kind, window);

    ProvisioningPlan plan;
    plan.effective_epsilon = eff_eps;
    plan.n_m = n_m;
    plan.proven_loss = proven;
    plan.requested_bound = intent.loss_multiple * eff_eps;
    plan.range = intent.range;

    DpBoxConfig dev;
    dev.frac_bits = frac_bits;
    dev.word_bits = 20;
    dev.uniform_bits = intent.uniform_bits;
    dev.threshold_index = window;
    dev.thresholding = intent.kind == RangeControl::Thresholding;

    // Word coverage check: range plus window must fit the port word.
    double lsb = std::ldexp(1.0, -frac_bits);
    double extent = std::max(std::abs(intent.range.lo),
                             std::abs(intent.range.hi)) +
                    static_cast<double>(window) * lsb;
    if (extent / lsb >= std::ldexp(1.0, dev.word_bits - 1))
        fatal("Provisioner: range plus window (%g) exceeds the "
              "%d-bit port word", extent, dev.word_bits);

    if (intent.budget > 0.0) {
        dev.budget_enabled = true;
        std::vector<double> levels;
        for (double l : intent.segment_levels) {
            if (l > 1.0 && l < intent.loss_multiple)
                levels.push_back(l);
        }
        levels.push_back(intent.loss_multiple);
        std::sort(levels.begin(), levels.end());
        levels.erase(std::unique(levels.begin(), levels.end()),
                     levels.end());
        dev.segments = LossSegments::compute(calc, intent.kind,
                                             levels);
        // The outermost segment and the clamp window must coincide.
        dev.segments.back().threshold_index = window;
    }
    plan.device = dev;
    return plan;
}

bool
Provisioner::verify(const ProvisioningPlan &plan)
{
    FxpMechanismParams params = analysisParams(
        plan.range, plan.effective_epsilon,
        plan.device.uniform_bits, plan.device.frac_bits);
    ThresholdCalculator calc(params);
    RangeControl kind = plan.device.thresholding
        ? RangeControl::Thresholding
        : RangeControl::Resampling;
    double loss = calc.exactLossAt(kind, plan.device.threshold_index);
    return std::isfinite(loss) &&
           loss <= plan.requested_bound * (1.0 + 1e-9) + 1e-12;
}

std::string
ProvisioningPlan::toText() const
{
    std::ostringstream out;
    out << "ulpdp provisioning plan\n";
    out << "  range            = [" << range.lo << ", " << range.hi
        << "]\n";
    out << "  epsilon          = " << effective_epsilon
        << " (n_m = " << n_m << ")\n";
    out << "  control          = "
        << (device.thresholding ? "thresholding" : "resampling")
        << "\n";
    out << "  window           = " << device.threshold_index
        << " LSBs of 2^-" << device.frac_bits << "\n";
    out << "  proven loss      = " << proven_loss << " nats (bound "
        << requested_bound << ")\n";
    out << "  word             = " << device.word_bits << " bits, "
        << device.frac_bits << " fraction\n";
    out << "  urng             = Bu " << device.uniform_bits << "\n";
    out << "  budget logic     = "
        << (device.budget_enabled ? "enabled" : "disabled") << "\n";
    for (size_t i = 0; i < device.segments.size(); ++i) {
        out << "    segment " << i << "      = ext <= "
            << device.segments[i].threshold_index << " charge "
            << device.segments[i].loss << "\n";
    }
    return out.str();
}

} // namespace ulpdp
