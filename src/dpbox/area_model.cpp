#include "dpbox/area_model.h"

#include <cmath>
#include <sstream>

#include "common/logging.h"

namespace ulpdp {

DpBoxAreaModel::DpBoxAreaModel(const DpBoxConfig &config,
                               const AreaModelOptions &options)
{
    double ff = options.gates_per_ff;
    double fa = options.gates_per_fa;
    double mux = options.gates_per_mux;

    int w = config.word_bits;          // datapath width
    int wc = config.word_bits + 2;     // CORDIC internal width
    int iters = config.cordic_iterations;

    // Tausworthe: three 32-bit component registers plus the
    // shift/XOR feedback network (pure wiring + ~1.5 gates/bit of
    // XOR/mask logic) and the output XOR.
    breakdown_.tausworthe = static_cast<uint64_t>(
        3 * 32 * ff + 3 * 32 * 1.5 + 32 * 1.5);

    // CORDIC: each micro-rotation is three add/subtract units of
    // width wc (x, y, z) plus a little sign-select logic; the fixed
    // shifts are wiring. The atanh constant table costs ~0.25
    // gates/bit of ROM.
    double stage = 3.0 * wc * fa + 12.0;
    double table = static_cast<double>(iters) * wc * 0.25;
    if (options.unrolled_cordic) {
        // One combinational stage per iteration: the single-cycle
        // logarithm the paper pays "a higher area penalty" for.
        breakdown_.cordic = static_cast<uint64_t>(
            iters * stage + table);
    } else {
        // One stage reused over `iters` cycles: add state registers
        // and an iteration counter.
        breakdown_.cordic = static_cast<uint64_t>(
            stage + 3 * wc * ff + 40 + table +
            wc * mux /* shift amount select */);
    }

    // Scaling (Eq. 18): a w x w array multiplier (partial-product
    // ANDs + carry-save adder rows) plus the 2^{n_m} barrel shifter.
    breakdown_.scaling = static_cast<uint64_t>(
        w * w * 1.0 + static_cast<double>(w) * (w - 1) * fa * 0.55 +
        w * 4 * mux);

    // Noising: sensor adder, two window comparators, clamp muxes.
    breakdown_.noising = static_cast<uint64_t>(
        w * fa + 2 * w * 1.5 + 2 * w * mux);

    // Registers: sensor value, r_u, r_l, n_m (5 bits), mode bit,
    // precomputed-sample register, output register.
    breakdown_.registers = static_cast<uint64_t>(
        (3 * w + 5 + 1 + wc + w) * ff);

    // FSM: phase state, command decode, ready logic.
    breakdown_.fsm = 150;

    // Budget block (optional): budget register + subtractor,
    // per-segment comparators and the fused loss table, the cache
    // register and the replenishment counter.
    if (config.budget_enabled) {
        size_t segments = config.segments.size();
        breakdown_.budget = static_cast<uint64_t>(
            16 * ff + 16 * fa +
            static_cast<double>(segments) * (w * 1.5 + 16 * 0.25) +
            w * ff /* cache */ + 24 * ff /* replenish counter */ +
            24 * 1.5);
    }
}

double
DpBoxAreaModel::budgetOverhead() const
{
    uint64_t base = breakdown_.total() - breakdown_.budget;
    if (base == 0)
        return 0.0;
    return static_cast<double>(breakdown_.budget) /
           static_cast<double>(base);
}

std::string
AreaBreakdown::toString() const
{
    std::ostringstream out;
    out << "  tausworthe " << tausworthe << "\n";
    out << "  cordic     " << cordic << "\n";
    out << "  scaling    " << scaling << "\n";
    out << "  noising    " << noising << "\n";
    out << "  registers  " << registers << "\n";
    out << "  fsm        " << fsm << "\n";
    out << "  budget     " << budget << "\n";
    out << "  total      " << total() << "\n";
    return out.str();
}

} // namespace ulpdp
