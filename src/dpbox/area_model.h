/**
 * @file
 * Structural area model of the DP-Box.
 *
 * Section V reports synthesis results for the 65 nm implementation:
 * 10431 gates (NAND2-equivalent), 58.66 ns critical path, 158.3 uW at
 * 16 MHz, and "+11% gates" for the budget-control logic. We cannot
 * re-run Design Compiler, but the DP-Box datapath is simple enough
 * that its gate count can be *derived* from a structural bill of
 * materials: registers, adders, a multiplier, the CORDIC micro-
 * rotation stage with its constant table, the Tausworthe LFSRs, the
 * comparator/clamp logic and the FSM. Each block is priced with
 * standard NAND2-equivalent costs (a DFF ~ 6 gates, a full adder ~ 5,
 * a 2:1 mux bit ~ 3, an AND/OR ~ 1-1.5).
 *
 * The model's purpose is the *trend*: how area scales with word
 * length, URNG width, CORDIC iterations (iterative vs unrolled) and
 * the budget option -- so a designer can sweep the same trade-offs
 * the paper's variants table shows. Its absolute numbers land in the
 * same few-thousand-gate regime as the paper's synthesis.
 */

#ifndef ULPDP_DPBOX_AREA_MODEL_H
#define ULPDP_DPBOX_AREA_MODEL_H

#include <cstdint>
#include <string>

#include "dpbox/dpbox.h"

namespace ulpdp {

/** Per-block NAND2-equivalent gate counts. */
struct AreaBreakdown
{
    uint64_t tausworthe = 0;     ///< three LFSR components + XOR
    uint64_t cordic = 0;         ///< add/sub + shifters + z table
    uint64_t scaling = 0;        ///< multiplier + shifter (Eq. 18)
    uint64_t noising = 0;        ///< adder, comparators, clamp muxes
    uint64_t registers = 0;      ///< configuration + pipeline regs
    uint64_t fsm = 0;            ///< phase control, command decode
    uint64_t budget = 0;         ///< segment compare + budget sub

    /** Total gates. */
    uint64_t
    total() const
    {
        return tausworthe + cordic + scaling + noising + registers +
               fsm + budget;
    }

    /** Multi-line human-readable rendering. */
    std::string toString() const;
};

/** Microarchitectural choices the paper's variants differ in. */
struct AreaModelOptions
{
    /**
     * Unrolled CORDIC: one combinational stage per micro-rotation
     * (single-cycle log, big area -- the paper's default pays "a
     * higher area penalty" for exactly this). False = one iterative
     * stage reused over N cycles (small, slow).
     */
    bool unrolled_cordic = true;

    /** NAND2-equivalents per D flip-flop. */
    double gates_per_ff = 6.0;

    /** NAND2-equivalents per full-adder bit. */
    double gates_per_fa = 5.0;

    /** NAND2-equivalents per 2:1 mux bit. */
    double gates_per_mux = 3.0;
};

/** Computes the structural gate estimate for a DP-Box config. */
class DpBoxAreaModel
{
  public:
    explicit DpBoxAreaModel(const DpBoxConfig &config,
                            const AreaModelOptions &options =
                                AreaModelOptions());

    /** Per-block breakdown. */
    AreaBreakdown breakdown() const { return breakdown_; }

    /** Total NAND2-equivalent gates. */
    uint64_t totalGates() const { return breakdown_.total(); }

    /**
     * Fractional overhead of the budget block relative to the rest
     * (the paper reports 11%).
     */
    double budgetOverhead() const;

  private:
    AreaBreakdown breakdown_;
};

} // namespace ulpdp

#endif // ULPDP_DPBOX_AREA_MODEL_H
