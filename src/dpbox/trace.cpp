#include "dpbox/trace.h"

#include <cstdio>
#include <sstream>

#include "common/logging.h"

namespace ulpdp {

namespace {

const char *
phaseName(DpBoxPhase phase)
{
    switch (phase) {
      case DpBoxPhase::Initialization:
        return "init";
      case DpBoxPhase::Waiting:
        return "wait";
      case DpBoxPhase::Noising:
        return "noise";
    }
    return "?";
}

const char *
commandName(DpBoxCommand cmd)
{
    switch (cmd) {
      case DpBoxCommand::DoNothing:
        return "nop";
      case DpBoxCommand::StartNoising:
        return "start";
      case DpBoxCommand::SetEpsilon:
        return "set_eps";
      case DpBoxCommand::SetSensorValue:
        return "set_val";
      case DpBoxCommand::SetRangeUpper:
        return "set_ru";
      case DpBoxCommand::SetRangeLower:
        return "set_rl";
      case DpBoxCommand::SetThreshold:
        return "toggle";
    }
    return "?";
}

} // anonymous namespace

DpBoxTracer::DpBoxTracer(DpBox &box) : box_(box) {}

void
DpBoxTracer::step(DpBoxCommand cmd, int64_t input)
{
    box_.step(cmd, input);
    DpBoxTraceEntry e;
    e.cycle = box_.cycles();
    e.phase = box_.phase();
    e.command = cmd;
    e.input = input;
    e.ready = box_.ready();
    e.output = box_.output();
    e.range_lo = box_.rangeLoRaw();
    e.range_hi = box_.rangeHiRaw();
    e.budget = box_.remainingBudget();
    e.fault_detections = box_.faultStats().detections();
    e.fault_latched = box_.faultLatched();
    trace_.push_back(e);
}

TraceCheckResult
DpBoxTracer::check() const
{
    TraceCheckResult result;
    auto fail = [&](const std::string &msg, uint64_t cycle) {
        result.ok = false;
        result.violation =
            "cycle " + std::to_string(cycle) + ": " + msg;
    };

    int64_t window = box_.config().threshold_index;
    uint64_t period = box_.replenishPeriod();
    bool seen_post_init = false;
    // The device's replenishment timer starts when initialization is
    // sealed; track the last legal refill point accordingly.
    uint64_t last_refill = 0;
    // Fail-secure discipline state: the last output released before
    // the latch is the only data a latched device may replay.
    bool have_frozen = false;
    int64_t frozen = 0;

    for (size_t i = 0; i < trace_.size() && result.ok; ++i) {
        const DpBoxTraceEntry &e = trace_[i];

        // 3. Phase discipline: initialization is never re-entered.
        if (e.phase != DpBoxPhase::Initialization) {
            if (!seen_post_init)
                last_refill = e.cycle;
            seen_post_init = true;
        } else if (seen_post_init) {
            fail("re-entered initialization phase", e.cycle);
        }

        // 1. Containment: ready outputs stay inside the window the
        //    range registers imply (valid once a range exists).
        if (e.ready && e.range_hi > e.range_lo) {
            if (e.output < e.range_lo - window ||
                e.output > e.range_hi + window) {
                fail("output " + std::to_string(e.output) +
                         " outside window [" +
                         std::to_string(e.range_lo - window) + ", " +
                         std::to_string(e.range_hi + window) + "]",
                     e.cycle);
            }
        }

        // 4. Fail-secure discipline: a latched device only replays
        //    the frozen pre-latch output (or the midpoint constant).
        if (e.ready) {
            if (e.fault_latched) {
                int64_t allowed = have_frozen
                    ? frozen
                    : (e.range_lo + e.range_hi) / 2;
                if (e.output != allowed) {
                    fail("latched device released " +
                             std::to_string(e.output) +
                             " instead of replaying " +
                             std::to_string(allowed),
                         e.cycle);
                }
            } else {
                frozen = e.output;
                have_frozen = true;
            }
        }

        // 2. Budget soundness: the register may only rise when at
        //    least one replenishment period elapsed since the last
        //    refill (or since the timer started at seal time).
        if (i > 0) {
            const DpBoxTraceEntry &prev = trace_[i - 1];
            if (e.budget > prev.budget + 1e-12 &&
                prev.phase != DpBoxPhase::Initialization) {
                bool legal = period > 0 &&
                             e.cycle - last_refill >= period;
                if (legal) {
                    last_refill = e.cycle;
                } else {
                    fail("budget increased without replenishment (" +
                             std::to_string(prev.budget) + " -> " +
                             std::to_string(e.budget) + ")",
                         e.cycle);
                }
            }
        }
    }
    return result;
}

std::string
DpBoxTracer::toText(size_t max_rows) const
{
    std::ostringstream out;
    out << "cycle    phase  cmd      input      ready  output     "
           "budget\n";
    size_t start = trace_.size() > max_rows
        ? trace_.size() - max_rows
        : 0;
    char buf[160];
    for (size_t i = start; i < trace_.size(); ++i) {
        const DpBoxTraceEntry &e = trace_[i];
        std::snprintf(buf, sizeof(buf),
                      "%-8llu %-6s %-8s %-10lld %-6d %-10lld %.4f\n",
                      static_cast<unsigned long long>(e.cycle),
                      phaseName(e.phase), commandName(e.command),
                      static_cast<long long>(e.input),
                      e.ready ? 1 : 0,
                      static_cast<long long>(e.output), e.budget);
        out << buf;
    }
    return out.str();
}

} // namespace ulpdp
