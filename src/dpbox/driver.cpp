#include "dpbox/driver.h"

#include <cmath>

#include "common/logging.h"
#include "telemetry/telemetry.h"

namespace ulpdp {

namespace {

/** Host-side surface: end-to-end noising latency in device cycles
 *  (the paper's 2-cycles-plus-resamples claim, Section V) and
 *  configuration hygiene. */
struct DriverMetrics
{
    LatencyHistogram &latency = telemetry::registry().histogram(
        "ulpdp_dpbox_noise_latency_cycles",
        "Device cycles from StartNoising to ready",
        "cycles", {2, 3, 4, 8, 16, 64, 256, 4096});
    Counter &roundings = telemetry::registry().counter(
        "ulpdp_driver_epsilon_roundings_total",
        "configure() calls whose epsilon was rounded to a power of 2",
        "events");
};

DriverMetrics &
driverMetrics()
{
    static DriverMetrics m;
    return m;
}

} // anonymous namespace

DpBoxDriver::DpBoxDriver(const DpBoxConfig &config) : box_(config) {}

void
DpBoxDriver::initialize(double budget, uint64_t replenish_period)
{
    if (initialized_)
        fatal("DpBoxDriver: initialize() may only run once (the "
              "device seals its budget configuration)");
    if (!(budget > 0.0))
        fatal("DpBoxDriver: budget must be positive, got %g", budget);
    ULPDP_ASSERT(box_.phase() == DpBoxPhase::Initialization);

    // Budget register is Q.8 fixed point on the input port.
    int64_t budget_raw = std::llrint(budget * 256.0);
    box_.step(DpBoxCommand::SetEpsilon, budget_raw);
    box_.step(DpBoxCommand::SetRangeUpper,
              static_cast<int64_t>(replenish_period));
    box_.step(DpBoxCommand::StartNoising);
    initialized_ = true;
}

void
DpBoxDriver::configure(double epsilon, const SensorRange &range)
{
    if (!initialized_)
        fatal("DpBoxDriver: initialize() must run before configure()");
    if (!(epsilon > 0.0))
        fatal("DpBoxDriver: epsilon must be positive, got %g", epsilon);

    int n_m = static_cast<int>(std::llrint(-std::log2(epsilon)));
    if (n_m < 0)
        n_m = 0;
    if (n_m > 16)
        n_m = 16;
    double effective = std::ldexp(1.0, -n_m);
    if (std::abs(effective - epsilon) > 1e-12 * epsilon) {
        ++epsilon_rounding_warnings_;
        if (telemetry::enabled())
            driverMetrics().roundings.inc();
        warn("DpBoxDriver: epsilon %g is not a power of two; the "
             "device will use %g (n_m = %d)", epsilon, effective, n_m);
    }

    box_.step(DpBoxCommand::SetEpsilon, n_m);
    box_.step(DpBoxCommand::SetRangeLower, box_.toRaw(range.lo));
    box_.step(DpBoxCommand::SetRangeUpper, box_.toRaw(range.hi));
    configured_ = true;
}

void
DpBoxDriver::setThresholding(bool thresholding)
{
    if (!initialized_)
        fatal("DpBoxDriver: initialize() must run first");
    if (box_.thresholdingMode() != thresholding)
        box_.step(DpBoxCommand::SetThreshold);
}

DpBoxResult
DpBoxDriver::noise(double x)
{
    if (!configured_)
        fatal("DpBoxDriver: configure() must run before noise()");

    box_.step(DpBoxCommand::SetSensorValue, box_.toRaw(x));

    uint64_t start = box_.cycles();
    box_.step(DpBoxCommand::StartNoising);
    while (!box_.ready()) {
        box_.step(DpBoxCommand::DoNothing);
        // A device bug could starve us; the FSM guarantees progress,
        // so bound the wait generously and panic beyond it.
        if (box_.cycles() - start > (uint64_t{1} << 22))
            panic("DpBoxDriver: device never became ready");
    }

    DpBoxResult result;
    result.value = box_.fromRaw(box_.output());
    result.latency_cycles = box_.cycles() - start;
    if (telemetry::enabled())
        driverMetrics().latency.observe(
            static_cast<double>(result.latency_cycles));
    return result;
}

double
DpBoxDriver::effectiveEpsilon() const
{
    return std::ldexp(1.0, -box_.nm());
}

FaultStats
DpBoxDriver::faultStats() const
{
    FaultStats stats = box_.faultStats();
    stats.epsilon_rounding_warnings = epsilon_rounding_warnings_;
    return stats;
}

} // namespace ulpdp
