/**
 * @file
 * Device provisioning: from privacy intent to a verified DP-Box
 * configuration.
 *
 * In a real deployment someone must turn "this sensor reads
 * [94, 200] mm Hg, we want eps = 0.5 with worst-case loss 2*eps and
 * a budget of 25 nats per hour" into the register values and fused
 * constants of a DP-Box: the clamp window, the budget segments, the
 * epsilon exponent n_m, the word format. That computation runs the
 * exact analyses of this library at provisioning time (on a host,
 * not the ULP device) and must be re-verified after any parameter
 * change -- Section III-B's thresholds are configuration-specific.
 *
 * Provisioner does exactly that and returns a plan carrying both the
 * ready-to-use DpBoxConfig and the proof obligations it checked
 * (exact worst-case loss, window, segments). Plans render to a
 * human-auditable text manifest, and verify() re-runs the exact
 * analysis on a plan so later edits cannot silently void the
 * guarantee.
 *
 * Grid note: the plan picks the device LSB so the sensor range spans
 * 64-128 quantization steps (or frac_bits = 0 for very wide ranges).
 * Releasing values on that grid is coarser than a 13-bit ADC code --
 * deliberately: a coarser release grid concentrates more URNG states
 * per bin, which pushes the tail gaps of Fig. 4(b) farther out and
 * widens the provably-safe window.
 */

#ifndef ULPDP_DPBOX_PROVISIONING_H
#define ULPDP_DPBOX_PROVISIONING_H

#include <string>

#include "core/budget.h"
#include "core/threshold_calc.h"
#include "dpbox/dpbox.h"

namespace ulpdp {

/** High-level privacy intent for one sensor. */
struct PrivacyIntent
{
    /** Physical sensor range. */
    SensorRange range{0.0, 1.0};

    /**
     * Requested privacy parameter. Rounded to the nearest power of
     * two (Eq. 19); the plan records the effective value.
     */
    double epsilon = 0.5;

    /** Worst-case loss bound as a multiple of eps (> 1). */
    double loss_multiple = 2.0;

    /** Range-control flavour. */
    RangeControl kind = RangeControl::Thresholding;

    /** Privacy budget per replenishment epoch (nats); 0 disables
     *  the embedded budget logic. */
    double budget = 0.0;

    /** Replenishment period in device cycles; 0 = never. */
    uint64_t replenish_period = 0;

    /** Loss levels (multiples of eps) for the budget segments; the
     *  loss_multiple itself is always appended as the outermost. */
    std::vector<double> segment_levels{1.5};

    /** URNG width Bu. */
    int uniform_bits = 17;
};

/** A verified provisioning result. */
struct ProvisioningPlan
{
    /** Ready-to-construct device configuration. */
    DpBoxConfig device;

    /** Effective (power-of-two) epsilon. */
    double effective_epsilon = 0.0;

    /** n_m register value (epsilon = 2^-n_m). */
    int n_m = 0;

    /** Exact worst-case loss proved for the window. */
    double proven_loss = 0.0;

    /** The loss bound that was requested (multiple * eps). */
    double requested_bound = 0.0;

    /** Range used (snapped onto the device grid). */
    SensorRange range{0.0, 1.0};

    /** Human-auditable rendering of the whole plan. */
    std::string toText() const;
};

/** Computes and verifies provisioning plans. */
class Provisioner
{
  public:
    /**
     * Build a verified plan for @p intent.
     *
     * Fails (FatalError) if no window satisfies the requested bound
     * at the given resolution, or if the sensor range does not fit
     * the word format.
     */
    static ProvisioningPlan plan(const PrivacyIntent &intent);

    /**
     * Re-verify a plan: recompute the exact worst-case loss for the
     * plan's device configuration and compare against its recorded
     * bound. Use after deserializing or editing a plan.
     */
    static bool verify(const ProvisioningPlan &plan);
};

} // namespace ulpdp

#endif // ULPDP_DPBOX_PROVISIONING_H
