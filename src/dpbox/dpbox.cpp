#include "dpbox/dpbox.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "core/budget_ledger.h"
#include "core/mechanism_registry.h"
#include "telemetry/telemetry.h"

namespace ulpdp {

namespace {

/** Device-model surface, shared by every DpBox in the process (a
 *  deployment aggregates over its install base the same way). */
struct DpBoxMetrics
{
    Counter &requests = telemetry::registry().counter(
        "ulpdp_dpbox_noising_requests_total",
        "StartNoising commands accepted by the device",
        "requests");
    Counter &resamples = telemetry::registry().counter(
        "ulpdp_dpbox_resamples_total",
        "Extra noising cycles spent redrawing out-of-window samples",
        "cycles");
    Counter &replays = telemetry::registry().counter(
        "ulpdp_dpbox_cache_replays_total",
        "Outputs served from the cache register",
        "reports");
    Counter &exhausted = telemetry::registry().counter(
        "ulpdp_dpbox_budget_exhausted_total",
        "Noising requests the budget logic halted",
        "requests");
    Counter &glitches = telemetry::registry().counter(
        "ulpdp_dpbox_timer_glitches_rejected_total",
        "Replenishment-timer misfires the shadow counter rejected",
        "events");
    Sum &spend = telemetry::registry().sum(
        "ulpdp_dpbox_budget_spend_nats_total",
        "Privacy loss charged by the embedded budget logic",
        "nats");
};

DpBoxMetrics &
dpboxMetrics()
{
    static DpBoxMetrics m;
    return m;
}

} // anonymous namespace

DpBox::DpBox(const DpBoxConfig &config)
    : config_(config), urng_(config.seed),
      cordic_(config.cordic_iterations),
      thresholding_(config.thresholding), health_(config.health)
{
    if (config.harden_faults) {
        // The monitor observes the URNG *after* any fault hook, i.e.
        // exactly the words the noising datapath consumes.
        urng_.attachHealthMonitor(&health_);
    }
    if (!config.mechanism.empty()) {
        const MechanismRegistry::Entry *entry =
            MechanismRegistry::instance().find(config.mechanism);
        if (entry == nullptr) {
            std::string known;
            for (const std::string &k :
                     MechanismRegistry::instance().names()) {
                if (!known.empty())
                    known += ", ";
                known += k;
            }
            fatal("DpBox: unknown mechanism '%s' (registered: %s)",
                  config.mechanism.c_str(), known.c_str());
        }
        if (config.mechanism == "resampling") {
            thresholding_ = false;
        } else if (config.mechanism == "thresholding") {
            thresholding_ = true;
        } else {
            // The Eq. (19) noiser scales by bit shifts (epsilon =
            // 2^-n_m): a corrected lambda or an extra rounding stage
            // has no datapath to run on.
            fatal("DpBox: mechanism '%s' does not lower onto the "
                  "device datapath (the shift-scaled noiser cannot "
                  "express a corrected scale or rounding mode); use "
                  "'resampling' or 'thresholding'",
                  config.mechanism.c_str());
        }
    }
    if (config.word_bits < 8 || config.word_bits > 62)
        fatal("DpBox: word_bits must be in [8, 62], got %d",
              config.word_bits);
    if (config.frac_bits < 0 || config.frac_bits >= config.word_bits)
        fatal("DpBox: frac_bits must be in [0, word_bits), got %d",
              config.frac_bits);
    if (config.uniform_bits < 4 || config.uniform_bits > 32)
        fatal("DpBox: uniform_bits must be in [4, 32], got %d",
              config.uniform_bits);
    if (config.threshold_index < 0)
        fatal("DpBox: threshold_index must be non-negative");
    if (config.budget_enabled) {
        if (config.segments.empty())
            fatal("DpBox: budget enabled but no loss segments given");
        if (config.segments.back().threshold_index !=
                config.threshold_index)
            fatal("DpBox: outermost segment threshold (%lld) must "
                  "equal threshold_index (%lld)",
                  static_cast<long long>(
                      config.segments.back().threshold_index),
                  static_cast<long long>(config.threshold_index));
    }

    raw_max_ = (int64_t{1} << (config.word_bits - 1)) - 1;
    raw_min_ = -(int64_t{1} << (config.word_bits - 1));

    if (config.hardened) {
        // Section IV, no-software-trusted deployment: privacy
        // parameters come fused from manufacture and the port
        // commands that would change them are dead (applyCommand
        // ignores them outside initialization).
        if (config.fused_range_hi <= config.fused_range_lo)
            fatal("DpBox: hardened mode requires a valid fused "
                  "sensor range");
        if (config.fused_n_m < 0 || config.fused_n_m > 16)
            fatal("DpBox: fused n_m must be in [0, 16], got %d",
                  config.fused_n_m);
        n_m_ = config.fused_n_m;
        r_l_ = std::clamp(config.fused_range_lo, raw_min_, raw_max_);
        r_u_ = std::clamp(config.fused_range_hi, raw_min_, raw_max_);
    }
}

void
DpBox::attachFaultHook(FaultHook *hook)
{
    fault_hook_ = hook;
    urng_.setFaultHook(hook);
}

double
DpBox::lsb() const
{
    return std::ldexp(1.0, -config_.frac_bits);
}

int64_t
DpBox::toRaw(double v) const
{
    double scaled = std::ldexp(v, config_.frac_bits);
    if (scaled >= static_cast<double>(raw_max_))
        return raw_max_;
    if (scaled <= static_cast<double>(raw_min_))
        return raw_min_;
    return std::llrint(scaled);
}

double
DpBox::fromRaw(int64_t raw) const
{
    return std::ldexp(static_cast<double>(raw), -config_.frac_bits);
}

void
DpBox::precomputeSample()
{
    // Eq. (17) realised as a sign bit plus a Bu-bit magnitude index:
    // the MSB of the uniform word selects the branch, the rest feeds
    // the CORDIC logarithm. The raw CORDIC output stays un-scaled
    // here; the noising cycle applies s_f (Eq. 18).
    uint64_t m = urng_.nextUnitIndex(config_.uniform_bits);
    sample_sign_ = urng_.nextSign();
    sample_mag_raw_ = -cordic_.lnUnitIndexRaw(m, config_.uniform_bits);
    ULPDP_ASSERT(sample_mag_raw_ >= 0);
    sample_valid_ = true;
}

std::optional<double>
DpBox::chargeBudget(int64_t out)
{
    int64_t ext = 0;
    if (out < r_l_)
        ext = r_l_ - out;
    else if (out > r_u_)
        ext = out - r_u_;

    double loss = config_.segments.back().loss;
    for (const auto &seg : config_.segments) {
        if (ext <= seg.threshold_index) {
            loss = seg.loss;
            break;
        }
    }
    if (budget_ + 1e-12 < loss)
        return std::nullopt;

    // Durability gate: the spend hits flash before the noised word
    // hits the output port. A cut append means the power is dying --
    // withhold the transaction (the caller replays the cache) and,
    // on hardened silicon, latch fail-secure.
    if (ledger_ != nullptr && !ledger_->journalSpend(loss)) {
        ++fault_stats_.ledger_append_failures;
        if (config_.harden_faults && !fault_latched_) {
            fault_latched_ = true;
            warn("DpBox: ledger append failed before output release; "
                 "latching cache-only service");
            telemetry::event(
                EventKind::FaultLatch, stats_.cycles,
                static_cast<double>(fault_stats_.detections()));
        }
        return std::nullopt;
    }

    budget_ -= loss;
    return loss;
}

bool
DpBox::noisingCycle()
{
    // Fail-secure gate: a tripped URNG health test means the
    // precomputed sample (and every future draw) comes from suspect
    // state. Latch cache-only service -- replaying already-released
    // data costs zero additional privacy no matter how broken the
    // noise source is.
    if (config_.harden_faults && !fault_latched_ && health_.alarmed()) {
        ++fault_stats_.urng_health_alarms;
        fault_latched_ = true;
        warn("DpBox: URNG continuous health test tripped; latching "
             "cache-only service");
        telemetry::event(
            EventKind::FaultLatch, stats_.cycles,
            static_cast<double>(fault_stats_.detections()));
    }
    if (fault_latched_) {
        ++fault_stats_.fail_secure_reports;
        ++stats_.cache_hits;
        if (telemetry::enabled())
            dpboxMetrics().replays.inc();
        output_ = cache_.value_or((r_l_ + r_u_) / 2);
        ready_ = true;
        sample_valid_ = false;
        return true;
    }

    ULPDP_ASSERT(sample_valid_);

    // Scale factor s_f = (r_u - r_l) * 2^{n_m} (Eqs. 16, 19): the
    // epsilon part is a left shift; the range part is one multiply.
    // The product is rounded into the output word -- the quantization
    // point of the whole datapath (step Delta = one output LSB).
    int64_t d_raw = r_u_ - r_l_;
    ULPDP_ASSERT(d_raw > 0);
    __int128 prod = static_cast<__int128>(sample_mag_raw_) * d_raw;
    prod <<= n_m_;
    int f = cordic_.fracBits();
    __int128 half = __int128{1} << (f - 1);
    int64_t mag_lsbs = static_cast<int64_t>((prod + half) >> f);

    int64_t tmp = sensor_ + sample_sign_ * mag_lsbs;
    tmp = std::clamp(tmp, raw_min_, raw_max_);

    int64_t win_lo = r_l_ - config_.threshold_index;
    int64_t win_hi = r_u_ + config_.threshold_index;

    if (tmp < win_lo || tmp > win_hi) {
        if (!thresholding_) {
            // Resampling: draw a fresh sample; this cycle is spent.
            ++stats_.resamples;
            if (telemetry::enabled())
                dpboxMetrics().resamples.inc();
            precomputeSample();
            return false;
        }
        tmp = std::clamp(tmp, win_lo, win_hi);
    }

    if (config_.budget_enabled) {
        auto charged = chargeBudget(tmp);
        if (!charged.has_value()) {
            // Budget exhausted: replay the cache (midpoint before any
            // fresh output exists -- a constant, zero leakage).
            ++stats_.budget_exhausted_events;
            ++stats_.cache_hits;
            if (telemetry::enabled()) {
                dpboxMetrics().exhausted.inc();
                dpboxMetrics().replays.inc();
                telemetry::event(EventKind::HaltReplay,
                                 stats_.cycles, 0.0);
            }
            output_ = cache_.value_or((r_l_ + r_u_) / 2);
            ready_ = true;
            sample_valid_ = false;
            return true;
        }
        if (telemetry::enabled()) {
            dpboxMetrics().spend.add(*charged);
            telemetry::event(EventKind::BudgetSpend, stats_.cycles,
                             *charged);
        }
    }

    output_ = tmp;
    cache_ = tmp;
    ready_ = true;
    sample_valid_ = false;
    return true;
}

void
DpBox::applyCommand(DpBoxCommand cmd, int64_t input)
{
    bool init = phase_ == DpBoxPhase::Initialization;
    switch (cmd) {
      case DpBoxCommand::DoNothing:
        break;
      case DpBoxCommand::SetEpsilon:
        if (init) {
            // During initialization this command configures the
            // budget (Section IV-A); losses are raw nats.
            initial_budget_ = static_cast<double>(input) *
                              std::ldexp(1.0, -8);
            budget_ = initial_budget_;
        } else if (!config_.hardened) {
            if (input < 0 || input > 16)
                fatal("DpBox: n_m must be in [0, 16], got %lld",
                      static_cast<long long>(input));
            n_m_ = static_cast<int>(input);
        }
        break;
      case DpBoxCommand::SetSensorValue:
        if (!init)
            sensor_ = std::clamp(input, raw_min_, raw_max_);
        break;
      case DpBoxCommand::SetRangeUpper:
        if (init) {
            replenish_period_ =
                input > 0 ? static_cast<uint64_t>(input) : 0;
        } else if (!config_.hardened) {
            r_u_ = std::clamp(input, raw_min_, raw_max_);
        }
        break;
      case DpBoxCommand::SetRangeLower:
        if (!init && !config_.hardened)
            r_l_ = std::clamp(input, raw_min_, raw_max_);
        break;
      case DpBoxCommand::SetThreshold:
        if (!init && !config_.hardened)
            thresholding_ = !thresholding_;
        break;
      case DpBoxCommand::StartNoising:
        if (init) {
            // Seal the budget configuration; it cannot change until
            // power cycle (the phase never returns to init).
            phase_ = DpBoxPhase::Waiting;
            last_replenish_cycle_ = stats_.cycles;
            precomputeSample();
        } else {
            if (r_u_ <= r_l_)
                fatal("DpBox: sensor range not configured "
                      "(r_u <= r_l)");
            ready_ = false;
            ++stats_.noising_requests;
            if (telemetry::enabled())
                dpboxMetrics().requests.inc();
            phase_ = DpBoxPhase::Noising;
        }
        break;
    }
}

void
DpBox::step(DpBoxCommand cmd, int64_t input)
{
    ++stats_.cycles;

    // Replenishment timer runs every cycle regardless of phase
    // (after initialization has sealed the configuration). The timer
    // comparator is a fault site: a glitch makes it claim the period
    // elapsed early, which would refill spent budget ahead of
    // schedule -- a direct privacy violation. The hardened device
    // cross-checks against a redundant shadow counter (modelled by
    // the elapsed-cycles arithmetic below) and refuses a refill the
    // shadow does not confirm.
    if (phase_ != DpBoxPhase::Initialization && replenish_period_ > 0) {
        bool elapsed =
            stats_.cycles - last_replenish_cycle_ >= replenish_period_;
        bool timer_fired = elapsed ||
            (fault_hook_ != nullptr && fault_hook_->replenishGlitch());
        if (timer_fired) {
            if (!elapsed && config_.harden_faults) {
                ++fault_stats_.timer_glitches_rejected;
                if (telemetry::enabled())
                    dpboxMetrics().glitches.inc();
            } else {
                budget_ = initial_budget_;
                last_replenish_cycle_ = stats_.cycles;
                if (config_.budget_enabled)
                    telemetry::event(EventKind::Replenish,
                                     stats_.cycles, budget_);
            }
        }
    }

    if (phase_ == DpBoxPhase::Noising) {
        // Device is busy; port commands are ignored this cycle.
        if (noisingCycle())
            phase_ = DpBoxPhase::Waiting;
        // Once latched, the URNG is never advanced again: no fresh
        // randomness may be drawn from suspect state.
        if (!sample_valid_ && !fault_latched_)
            precomputeSample();
        return;
    }

    applyCommand(cmd, input);
}

} // namespace ulpdp
