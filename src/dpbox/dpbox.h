/**
 * @file
 * DP-Box: cycle-level model of the paper's hardware module for local
 * differential privacy (Section IV).
 *
 * The DP-Box sits between a sensor and untrusted software. It exposes
 * a 3-bit command port, a signed fixed-point input port, a signed
 * output port and a ready bit. Operation has three phases:
 *
 *  1. Initialization (after reset, during secure boot): the privacy
 *     budget and replenishment period are configured; they can never
 *     be changed again until power cycle.
 *  2. Waiting: the device looks idle but internally tracks the
 *     replenishment timer and pre-computes the next Laplace sample
 *     I_u (Eq. 17) so that noising can complete in a single cycle.
 *  3. Noising: computes n = s_f * I_u (Eq. 18) with the scale factor
 *     s_f = (r_u - r_l) * 2^{n_m} (Eqs. 16/19 -- epsilon is a power
 *     of two so the epsilon part of the scaling is a bit shift),
 *     adds it to the sensor value and applies the configured range
 *     control (clamp, or resample one extra cycle per redraw).
 *
 * Latency model per Section V: a noised output is produced in 2
 * cycles (one register-load cycle + one noising cycle); thresholding
 * adds nothing; every resample adds one cycle. The uniform source is
 * the Tausworthe generator and the logarithm is the single-cycle
 * CORDIC unit.
 *
 * Values cross the ports as raw fixed-point words of a configurable
 * Q format (default Q14.6 in a 20-bit word: 13-bit sensors plus sign
 * and clamp headroom, 6 fraction bits -- "we needed to use 20-bit
 * fixed-point values" for 13-bit sensors, Section III-D).
 */

#ifndef ULPDP_DPBOX_DPBOX_H
#define ULPDP_DPBOX_DPBOX_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/fault.h"
#include "core/budget.h"
#include "rng/cordic.h"
#include "rng/health.h"
#include "rng/tausworthe.h"

namespace ulpdp {

/** The 3-bit command encoding of the DP-Box command port. */
enum class DpBoxCommand : uint8_t
{
    /** Hold the device idle (it would otherwise re-noise). */
    DoNothing = 0,

    /** Begin noising; in the initialization phase, seal the budget
     *  configuration and transition to waiting. */
    StartNoising = 1,

    /** Set n_m (epsilon = 2^-n_m); in initialization, set budget. */
    SetEpsilon = 2,

    /** Load the sensor value to be noised. */
    SetSensorValue = 3,

    /** Set the sensor range upper limit r_u; in initialization, set
     *  the replenishment period. */
    SetRangeUpper = 4,

    /** Set the sensor range lower limit r_l. */
    SetRangeLower = 5,

    /** Toggle between resampling and thresholding range control. */
    SetThreshold = 6,
};

/** Operating phase of the device FSM. */
enum class DpBoxPhase : uint8_t
{
    Initialization,
    Waiting,
    Noising,
};

/** Synthesis-time configuration of a DP-Box instance. */
struct DpBoxConfig
{
    /** Fraction bits of the port fixed-point format. */
    int frac_bits = 6;

    /** Total port word length in bits (paper: 20). */
    int word_bits = 20;

    /** Magnitude bits drawn from the URNG per sample (Bu). */
    int uniform_bits = 17;

    /** Window extension (in output LSBs) applied by the range
     *  control, i.e. the threshold n_th in Delta units. */
    int64_t threshold_index = 0;

    /** Start in thresholding (true) or resampling (false) mode. */
    bool thresholding = true;

    /**
     * Registry mechanism name selecting the range-control mode by
     * name instead of the raw `thresholding` toggle; empty keeps
     * the toggle. Only "resampling" and "thresholding" lower onto
     * the device datapath -- the Eq. (19) noiser scales by bit
     * shifts (epsilon = 2^-n_m), so a corrected lambda
     * (bounded-laplace) or a floor rounding stage (discrete-laplace)
     * is not expressible in this silicon and such names are rejected
     * at construction rather than silently mis-provisioned.
     */
    std::string mechanism;

    /** Enable the embedded budget-control logic (11% area cost). */
    bool budget_enabled = false;

    /**
     * Output-adaptive loss segments for the budget logic, innermost
     * first, thresholds in output LSB units. In real silicon this
     * table is computed from the analysis of Section III-C and fused
     * or configured at secure boot. The outermost threshold must
     * equal threshold_index.
     */
    std::vector<BudgetSegment> segments;

    /** CORDIC micro-rotations of the log unit. */
    int cordic_iterations = 32;

    /** Tausworthe seed (silicon would use a TRNG-seeded state). */
    uint64_t seed = 1;

    /**
     * Hardened ("no software trusted") mode, Section IV: on
     * microcontrollers without process isolation no software may be
     * allowed to set privacy parameters, so epsilon, the sensor
     * range and the control mode are fused at manufacture and the
     * corresponding port commands are ignored after initialization.
     */
    bool hardened = false;

    /** Fused n_m (epsilon = 2^-n_m); hardened mode only. */
    int fused_n_m = 1;

    /** Fused sensor range lower limit (raw word). */
    int64_t fused_range_lo = 0;

    /** Fused sensor range upper limit (raw word). */
    int64_t fused_range_hi = 0;

    /**
     * Fault-hardening logic (Section IV hardening extension): run
     * the SP 800-90B-style continuous health tests on the URNG,
     * cross-check the replenishment timer against a redundant shadow
     * counter, and latch fail-secure (cache-only) service on any
     * detection. Off models unhardened silicon for fault-injection
     * experiments.
     */
    bool harden_faults = true;

    /** Tuning of the URNG continuous health tests. */
    RngHealthConfig health;
};

/** Aggregate statistics the model keeps for evaluation. */
struct DpBoxStats
{
    uint64_t cycles = 0;
    uint64_t noising_requests = 0;
    uint64_t resamples = 0;
    uint64_t cache_hits = 0;
    uint64_t budget_exhausted_events = 0;

    /** Accumulate another device's counters (fleet aggregation). */
    DpBoxStats &
    operator+=(const DpBoxStats &o)
    {
        cycles += o.cycles;
        noising_requests += o.noising_requests;
        resamples += o.resamples;
        cache_hits += o.cache_hits;
        budget_exhausted_events += o.budget_exhausted_events;
        return *this;
    }
};

/**
 * Cycle-level DP-Box device model. Drive it one clock at a time with
 * step(); each call is one rising edge with the given command and
 * input word applied.
 */
class DpBox
{
  public:
    explicit DpBox(const DpBoxConfig &config);

    /** Apply one clock cycle with @p cmd and @p input on the ports. */
    void step(DpBoxCommand cmd, int64_t input = 0);

    /** Ready bit: a noised output is available on the output port. */
    bool ready() const { return ready_; }

    /** Output port (raw fixed-point word); valid while ready(). */
    int64_t output() const { return output_; }

    /** Current FSM phase. */
    DpBoxPhase phase() const { return phase_; }

    /** Total cycles elapsed since reset. */
    uint64_t cycles() const { return stats_.cycles; }

    /** Statistics counters. */
    const DpBoxStats &stats() const { return stats_; }

    /** Remaining privacy budget (raw loss units). */
    double remainingBudget() const { return budget_; }

    /** Whether the device is currently in thresholding mode. */
    bool thresholdingMode() const { return thresholding_; }

    /** Current n_m register value (epsilon = 2^-n_m). */
    int nm() const { return n_m_; }

    /** Current sensor-range register values (raw words). */
    int64_t rangeLoRaw() const { return r_l_; }
    int64_t rangeHiRaw() const { return r_u_; }

    /** Replenishment period configured at initialization. */
    uint64_t replenishPeriod() const { return replenish_period_; }

    /**
     * Attach a fault injector to the device's fault sites (URNG
     * output register, replenishment-timer comparator). Borrowed
     * pointer; nullptr detaches. Production devices leave this unset.
     */
    void attachFaultHook(FaultHook *hook);

    /**
     * Attach the durable budget ledger (borrowed; must outlive the
     * device and be mounted). Each spend is journaled before the
     * noised word reaches the output port; a failed append withholds
     * the transaction and (when harden_faults) latches cache-only
     * service. nullptr detaches.
     */
    void attachLedger(BudgetLedger *ledger) { ledger_ = ledger; }

    /** True once a detected fault latched cache-only service. */
    bool faultLatched() const { return fault_latched_; }

    /** Detection/degradation counters of the hardening logic. */
    const FaultStats &faultStats() const { return fault_stats_; }

    /** The URNG health monitor (active when harden_faults). */
    const RngHealthMonitor &healthMonitor() const { return health_; }

    /** Configuration (immutable after construction). */
    const DpBoxConfig &config() const { return config_; }

    /** Value of one output LSB. */
    double lsb() const;

    /** Convert a double to a port word (round, saturate). */
    int64_t toRaw(double v) const;

    /** Convert a port word to a double. */
    double fromRaw(int64_t raw) const;

  private:
    /** Execute a command received while in a configurable phase. */
    void applyCommand(DpBoxCommand cmd, int64_t input);

    /** Draw the next Laplace unit sample I_u (Eq. 17). */
    void precomputeSample();

    /** One noising-phase cycle; returns true when output is ready. */
    bool noisingCycle();

    /** Classify output extension and charge the budget; returns the
     *  charged loss or nullopt when the budget cannot cover it. */
    std::optional<double> chargeBudget(int64_t out);

    DpBoxConfig config_;
    Tausworthe urng_;
    CordicLog cordic_;

    DpBoxPhase phase_ = DpBoxPhase::Initialization;
    bool ready_ = false;
    int64_t output_ = 0;

    // Configuration registers.
    int n_m_ = 1;           // epsilon = 2^-n_m
    int64_t sensor_ = 0;    // sensor value register (raw)
    int64_t r_u_ = 0;       // range upper (raw)
    int64_t r_l_ = 0;       // range lower (raw)
    bool thresholding_;
    double budget_ = 0.0;
    double initial_budget_ = 0.0;
    uint64_t replenish_period_ = 0;
    uint64_t last_replenish_cycle_ = 0;

    // Waiting-phase precomputed Laplace unit sample (Eq. 17): sign
    // bit plus un-scaled CORDIC magnitude in the CORDIC's internal Q
    // format. Scaling by s_f happens in the noising cycle (Eq. 18).
    int sample_sign_ = 1;
    int64_t sample_mag_raw_ = 0;
    bool sample_valid_ = false;

    // Cache register for budget-exhausted replay.
    std::optional<int64_t> cache_;

    // Fault hardening: continuous health tests on the URNG, the
    // injector hook, and the fail-secure latch.
    RngHealthMonitor health_;
    FaultHook *fault_hook_ = nullptr;
    BudgetLedger *ledger_ = nullptr;
    bool fault_latched_ = false;
    FaultStats fault_stats_;

    int64_t raw_min_;
    int64_t raw_max_;
    DpBoxStats stats_;
};

} // namespace ulpdp

#endif // ULPDP_DPBOX_DPBOX_H
