/**
 * @file
 * Minimal CSV input/output for dataset columns.
 *
 * Lets users run every bench on the *real* UCI files if they have
 * them: load one numeric column, attach a declared range, and feed it
 * through the same pipeline as the synthetic substitutes. Also used
 * by the benches to dump series for external plotting.
 */

#ifndef ULPDP_DATA_CSV_H
#define ULPDP_DATA_CSV_H

#include <string>
#include <vector>

#include "data/dataset.h"

namespace ulpdp {

namespace csv {

/**
 * Load one numeric column from a delimited text file.
 *
 * @param path File path.
 * @param column Zero-based column index.
 * @param delimiter Field delimiter.
 * @param skip_header Skip the first line.
 * @return Values parsed; rows whose field does not parse as a double
 *         are skipped.
 */
std::vector<double> loadColumn(const std::string &path, size_t column,
                               char delimiter = ',',
                               bool skip_header = false);

/**
 * Load a dataset: one column plus an explicit declared range.
 */
Dataset loadDataset(const std::string &path, size_t column,
                    const SensorRange &range, const std::string &name,
                    char delimiter = ',', bool skip_header = false);

/**
 * Write aligned (x, y...) series as CSV, one header row then data.
 * All series must have equal length.
 */
void writeSeries(const std::string &path,
                 const std::vector<std::string> &headers,
                 const std::vector<std::vector<double>> &columns);

} // namespace csv

} // namespace ulpdp

#endif // ULPDP_DATA_CSV_H
