/**
 * @file
 * Synthetic substitutes for the seven Table I datasets.
 *
 * The real UCI files are not bundled; each generator below produces a
 * column matched to the corresponding dataset's published entry
 * count, declared sensor range, mean, standard deviation and
 * qualitative shape (unimodal clipped Gaussian, mixture, skewed,
 * ...). Utility of an LDP mechanism depends on the sensor range d
 * (noise scale) and the bulk distribution shape (median/variance
 * queries), both of which are preserved -- see DESIGN.md for the
 * substitution rationale. All generators are deterministic for a
 * given seed.
 */

#ifndef ULPDP_DATA_GENERATORS_H
#define ULPDP_DATA_GENERATORS_H

#include <cstdint>
#include <vector>

#include "data/dataset.h"

namespace ulpdp {

/** Low-level distribution builders shared by the dataset generators. */
namespace gen {

/** Gaussian(mu, sigma) samples clipped into [lo, hi]. */
std::vector<double> clippedGaussian(size_t n, double mu, double sigma,
                                    double lo, double hi,
                                    uint64_t seed);

/** Two-component Gaussian mixture clipped into [lo, hi]. */
std::vector<double> gaussianMixture(size_t n, double mu1, double sigma1,
                                    double mu2, double sigma2,
                                    double weight1, double lo,
                                    double hi, uint64_t seed);

/** Uniform samples over [lo, hi]. */
std::vector<double> uniform(size_t n, double lo, double hi,
                            uint64_t seed);

/** Exponential-ish right-skewed samples scaled into [lo, hi]. */
std::vector<double> rightSkewed(size_t n, double scale, double lo,
                                double hi, uint64_t seed);

} // namespace gen

/**
 * Statlog (Heart): resting blood pressure of 270 patients, mm Hg.
 * Declared range [94, 200]; approximately Gaussian around 131 +- 18.
 */
Dataset makeStatlogHeart(uint64_t seed = 101);

/**
 * Auto-MPG: fuel economy of 398 car models, miles per gallon.
 * Declared range [9, 46.6]; right-skewed around 23.5 +- 7.8.
 */
Dataset makeAutoMpg(uint64_t seed = 102);

/**
 * Robot Sensors: ultrasound range readings from a wall-following
 * robot, 5456 entries. Declared range [0, 5] meters; bimodal (near
 * wall vs open space).
 */
Dataset makeRobotSensors(uint64_t seed = 103);

/**
 * Human Activity (smartphone accelerometer feature), 10299 entries.
 * Declared range [-1, 1]; concentrated around -0.1 +- 0.4.
 */
Dataset makeHumanActivity(uint64_t seed = 104);

/**
 * Localization for Person Activity: wearable tag coordinate, 164860
 * entries. Declared range [0, 4] meters; mixture of activity zones.
 */
Dataset makeLocalization(uint64_t seed = 105);

/**
 * UJIIndoorLoc: WiFi-fingerprint longitude, 19937 entries. Declared
 * range [-7691.3, -7300.9] (UTM meters); multimodal (buildings).
 */
Dataset makeUjiIndoorLoc(uint64_t seed = 106);

/**
 * Postural Transitions (smartphone feature), 10929 entries. Declared
 * range [-1, 1]; concentrated around 0.15 +- 0.32.
 */
Dataset makePosturalTransitions(uint64_t seed = 107);

/** All seven Table I datasets, in the paper's order. */
std::vector<Dataset> makeAllTableOneDatasets(uint64_t seed = 100);

/**
 * Binary gender column matched to the Statlog heart dataset (the
 * Section VI-E randomized-response example): @p n entries, value 1
 * (male) with probability @p male_fraction, else 0.
 */
Dataset makeStatlogGender(size_t n = 270, double male_fraction = 0.68,
                          uint64_t seed = 108);

} // namespace ulpdp

#endif // ULPDP_DATA_GENERATORS_H
