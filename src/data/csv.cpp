#include "data/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace ulpdp {

namespace csv {

std::vector<double>
loadColumn(const std::string &path, size_t column, char delimiter,
           bool skip_header)
{
    std::ifstream in(path);
    if (!in)
        fatal("csv::loadColumn: cannot open %s", path.c_str());

    std::vector<double> values;
    std::string line;
    bool first = true;
    while (std::getline(in, line)) {
        if (first && skip_header) {
            first = false;
            continue;
        }
        first = false;
        if (line.empty())
            continue;

        std::stringstream ss(line);
        std::string field;
        size_t idx = 0;
        bool found = false;
        while (std::getline(ss, field, delimiter)) {
            if (idx == column) {
                found = true;
                break;
            }
            ++idx;
        }
        if (!found)
            continue;

        char *end = nullptr;
        double v = std::strtod(field.c_str(), &end);
        if (end == field.c_str())
            continue; // not numeric; skip the row
        values.push_back(v);
    }
    return values;
}

Dataset
loadDataset(const std::string &path, size_t column,
            const SensorRange &range, const std::string &name,
            char delimiter, bool skip_header)
{
    Dataset d;
    d.name = name;
    d.description = "loaded from " + path;
    d.range = range;
    d.values = loadColumn(path, column, delimiter, skip_header);
    if (d.values.empty())
        fatal("csv::loadDataset: no numeric values in column %zu of "
              "%s", column, path.c_str());
    for (auto &v : d.values)
        v = range.clamp(v);
    return d;
}

void
writeSeries(const std::string &path,
            const std::vector<std::string> &headers,
            const std::vector<std::vector<double>> &columns)
{
    if (headers.size() != columns.size())
        fatal("csv::writeSeries: %zu headers for %zu columns",
              headers.size(), columns.size());
    if (columns.empty())
        fatal("csv::writeSeries: no columns");
    size_t rows = columns[0].size();
    for (const auto &col : columns) {
        if (col.size() != rows)
            fatal("csv::writeSeries: ragged columns");
    }

    std::ofstream out(path);
    if (!out)
        fatal("csv::writeSeries: cannot open %s for writing",
              path.c_str());

    for (size_t i = 0; i < headers.size(); ++i) {
        out << headers[i];
        out << (i + 1 < headers.size() ? ',' : '\n');
    }
    for (size_t r = 0; r < rows; ++r) {
        for (size_t c = 0; c < columns.size(); ++c) {
            out << columns[c][r];
            out << (c + 1 < columns.size() ? ',' : '\n');
        }
    }
}

} // namespace csv

} // namespace ulpdp
