/**
 * @file
 * Synthetic sensor time series.
 *
 * The budget-replenishment experiments need *streams*, not bags of
 * values: a device noising one evolving signal over time, with the
 * budget refilling each epoch. These generators produce bounded,
 * deterministic time series with the shapes common in the paper's
 * application domains: a mean-reverting random walk (vital signs), a
 * diurnal pattern plus noise (home energy / temperature), and a
 * piecewise-constant activity signal (occupancy, device states).
 */

#ifndef ULPDP_DATA_TIMESERIES_H
#define ULPDP_DATA_TIMESERIES_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/sensor_range.h"

namespace ulpdp {

namespace timeseries {

/**
 * Mean-reverting (Ornstein-Uhlenbeck-like) walk clipped to the
 * range: x_{t+1} = x_t + rate * (mu - x_t) + sigma * N(0,1).
 */
std::vector<double> meanRevertingWalk(size_t n,
                                      const SensorRange &range,
                                      double mu, double rate,
                                      double sigma, uint64_t seed);

/**
 * Diurnal pattern: base + amplitude * sin(2 pi t / period) plus
 * Gaussian jitter, clipped to the range.
 */
std::vector<double> diurnal(size_t n, const SensorRange &range,
                            double base, double amplitude,
                            size_t period, double jitter,
                            uint64_t seed);

/**
 * Piecewise-constant level signal: holds one of @p num_levels
 * evenly spaced values, switching with probability @p switch_prob
 * per step.
 */
std::vector<double> piecewiseLevels(size_t n,
                                    const SensorRange &range,
                                    int num_levels,
                                    double switch_prob,
                                    uint64_t seed);

} // namespace timeseries

} // namespace ulpdp

#endif // ULPDP_DATA_TIMESERIES_H
