#include "data/generators.h"

#include <algorithm>
#include <cmath>
#include <random>

#include "common/logging.h"

namespace ulpdp {

namespace gen {

namespace {

double
clip(double v, double lo, double hi)
{
    return std::min(std::max(v, lo), hi);
}

} // anonymous namespace

std::vector<double>
clippedGaussian(size_t n, double mu, double sigma, double lo, double hi,
                uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::normal_distribution<double> dist(mu, sigma);
    std::vector<double> out(n);
    for (auto &v : out)
        v = clip(dist(rng), lo, hi);
    return out;
}

std::vector<double>
gaussianMixture(size_t n, double mu1, double sigma1, double mu2,
                double sigma2, double weight1, double lo, double hi,
                uint64_t seed)
{
    ULPDP_ASSERT(weight1 >= 0.0 && weight1 <= 1.0);
    std::mt19937_64 rng(seed);
    std::normal_distribution<double> d1(mu1, sigma1);
    std::normal_distribution<double> d2(mu2, sigma2);
    std::uniform_real_distribution<double> pick(0.0, 1.0);
    std::vector<double> out(n);
    for (auto &v : out)
        v = clip(pick(rng) < weight1 ? d1(rng) : d2(rng), lo, hi);
    return out;
}

std::vector<double>
uniform(size_t n, double lo, double hi, uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> dist(lo, hi);
    std::vector<double> out(n);
    for (auto &v : out)
        v = dist(rng);
    return out;
}

std::vector<double>
rightSkewed(size_t n, double scale, double lo, double hi, uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::exponential_distribution<double> dist(1.0 / scale);
    std::vector<double> out(n);
    for (auto &v : out)
        v = clip(lo + dist(rng), lo, hi);
    return out;
}

} // namespace gen

Dataset
makeStatlogHeart(uint64_t seed)
{
    Dataset d;
    d.name = "Statlog (Heart)";
    d.description = "resting blood pressure, mm Hg";
    d.range = SensorRange(94.0, 200.0);
    d.values = gen::clippedGaussian(270, 131.3, 17.9, d.range.lo,
                                    d.range.hi, seed);
    return d;
}

Dataset
makeAutoMpg(uint64_t seed)
{
    Dataset d;
    d.name = "Auto-MPG";
    d.description = "fuel economy, miles per gallon";
    d.range = SensorRange(9.0, 46.6);
    // MPG is right-skewed: many mid-20s cars, a tail of economical
    // ones.
    d.values = gen::rightSkewed(398, 10.0, d.range.lo, d.range.hi,
                                seed);
    return d;
}

Dataset
makeRobotSensors(uint64_t seed)
{
    Dataset d;
    d.name = "Robot Sensors";
    d.description = "ultrasound range readings, meters";
    d.range = SensorRange(0.0, 5.0);
    // Wall-following: one mode hugging the wall (~0.8 m), one mode of
    // open-space echoes near the sensor ceiling.
    d.values = gen::gaussianMixture(5456, 0.8, 0.3, 4.2, 0.6, 0.6,
                                    d.range.lo, d.range.hi, seed);
    return d;
}

Dataset
makeHumanActivity(uint64_t seed)
{
    Dataset d;
    d.name = "Human Activity";
    d.description = "normalised accelerometer feature";
    d.range = SensorRange(-1.0, 1.0);
    d.values = gen::clippedGaussian(10299, -0.1, 0.4, d.range.lo,
                                    d.range.hi, seed);
    return d;
}

Dataset
makeLocalization(uint64_t seed)
{
    Dataset d;
    d.name = "Localization for Person";
    d.description = "wearable tag coordinate, meters";
    d.range = SensorRange(0.0, 4.0);
    d.values = gen::gaussianMixture(164860, 1.2, 0.5, 2.9, 0.4, 0.55,
                                    d.range.lo, d.range.hi, seed);
    return d;
}

Dataset
makeUjiIndoorLoc(uint64_t seed)
{
    Dataset d;
    d.name = "UJIIndoorLoc";
    d.description = "WiFi-fingerprint longitude, UTM meters";
    d.range = SensorRange(-7691.3, -7300.9);
    // Three buildings on the campus produce three longitude clusters.
    std::vector<double> a = gen::clippedGaussian(
        7000, -7620.0, 35.0, d.range.lo, d.range.hi, seed);
    std::vector<double> b = gen::clippedGaussian(
        7000, -7480.0, 40.0, d.range.lo, d.range.hi, seed + 1);
    std::vector<double> c = gen::clippedGaussian(
        5937, -7360.0, 30.0, d.range.lo, d.range.hi, seed + 2);
    d.values = std::move(a);
    d.values.insert(d.values.end(), b.begin(), b.end());
    d.values.insert(d.values.end(), c.begin(), c.end());
    return d;
}

Dataset
makePosturalTransitions(uint64_t seed)
{
    Dataset d;
    d.name = "Postural Transitions";
    d.description = "normalised smartphone feature";
    d.range = SensorRange(-1.0, 1.0);
    d.values = gen::clippedGaussian(10929, 0.15, 0.32, d.range.lo,
                                    d.range.hi, seed);
    return d;
}

std::vector<Dataset>
makeAllTableOneDatasets(uint64_t seed)
{
    return {
        makeAutoMpg(seed + 2),
        makeRobotSensors(seed + 3),
        makeStatlogHeart(seed + 1),
        makeHumanActivity(seed + 4),
        makeLocalization(seed + 5),
        makeUjiIndoorLoc(seed + 6),
        makePosturalTransitions(seed + 7),
    };
}

Dataset
makeStatlogGender(size_t n, double male_fraction, uint64_t seed)
{
    ULPDP_ASSERT(male_fraction >= 0.0 && male_fraction <= 1.0);
    Dataset d;
    d.name = "Statlog (Heart) gender";
    d.description = "binary category: 1 = male, 0 = female";
    d.range = SensorRange(0.0, 1.0);
    std::mt19937_64 rng(seed);
    std::bernoulli_distribution dist(male_fraction);
    d.values.resize(n);
    for (auto &v : d.values)
        v = dist(rng) ? 1.0 : 0.0;
    return d;
}

} // namespace ulpdp
