#include "data/timeseries.h"

#include <cmath>
#include <random>

#include "common/logging.h"

namespace ulpdp {

namespace timeseries {

std::vector<double>
meanRevertingWalk(size_t n, const SensorRange &range, double mu,
                  double rate, double sigma, uint64_t seed)
{
    if (!(rate >= 0.0 && rate <= 1.0))
        fatal("meanRevertingWalk: rate must be in [0, 1], got %g",
              rate);
    std::mt19937_64 rng(seed);
    std::normal_distribution<double> gauss(0.0, 1.0);
    std::vector<double> out(n);
    double x = range.clamp(mu);
    for (size_t t = 0; t < n; ++t) {
        x += rate * (mu - x) + sigma * gauss(rng);
        x = range.clamp(x);
        out[t] = x;
    }
    return out;
}

std::vector<double>
diurnal(size_t n, const SensorRange &range, double base,
        double amplitude, size_t period, double jitter, uint64_t seed)
{
    if (period == 0)
        fatal("diurnal: period must be positive");
    std::mt19937_64 rng(seed);
    std::normal_distribution<double> gauss(0.0, jitter);
    std::vector<double> out(n);
    for (size_t t = 0; t < n; ++t) {
        double phase = 2.0 * M_PI * static_cast<double>(t) /
                       static_cast<double>(period);
        out[t] = range.clamp(base + amplitude * std::sin(phase) +
                             gauss(rng));
    }
    return out;
}

std::vector<double>
piecewiseLevels(size_t n, const SensorRange &range, int num_levels,
                double switch_prob, uint64_t seed)
{
    if (num_levels < 2)
        fatal("piecewiseLevels: need at least 2 levels, got %d",
              num_levels);
    if (!(switch_prob >= 0.0 && switch_prob <= 1.0))
        fatal("piecewiseLevels: switch_prob must be in [0, 1]");

    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<int> pick(0, num_levels - 1);
    std::bernoulli_distribution flip(switch_prob);
    std::vector<double> out(n);
    int level = pick(rng);
    double step = range.length() / static_cast<double>(num_levels - 1);
    for (size_t t = 0; t < n; ++t) {
        if (flip(rng))
            level = pick(rng);
        out[t] = range.lo + static_cast<double>(level) * step;
    }
    return out;
}

} // namespace timeseries

} // namespace ulpdp
