/**
 * @file
 * Dataset abstraction for the evaluation benchmarks.
 *
 * The paper evaluates DP-Box on seven UCI Machine Learning Repository
 * datasets (Table I). Those files are not redistributable with this
 * repository, so src/data/generators.h provides synthetic substitutes
 * matched to each dataset's published size, range, mean, standard
 * deviation and qualitative shape; csv.h loads the real files when
 * they are available locally.
 */

#ifndef ULPDP_DATA_DATASET_H
#define ULPDP_DATA_DATASET_H

#include <string>
#include <vector>

#include "core/sensor_range.h"

namespace ulpdp {

/** A named column of sensor readings with its declared range. */
struct Dataset
{
    /** Display name (Table I row label). */
    std::string name;

    /** Short description of what the readings are. */
    std::string description;

    /**
     * Declared sensor range. This is what the DP-Box would be
     * configured with -- the physically possible range -- and it can
     * be wider than the observed min/max.
     */
    SensorRange range{0.0, 1.0};

    /** The readings themselves. */
    std::vector<double> values;

    /** Number of entries. */
    size_t size() const { return values.size(); }

    /** Observed minimum. */
    double observedMin() const;

    /** Observed maximum. */
    double observedMax() const;

    /** Observed mean. */
    double mean() const;

    /** Observed population standard deviation. */
    double stddev() const;

    /**
     * A deterministic subsample of at most @p max_entries values
     * (stride sampling), used to keep the biggest Table I datasets
     * tractable in the benches.
     */
    Dataset subsample(size_t max_entries) const;

    /** Panic unless every value lies within the declared range. */
    void validate() const;
};

} // namespace ulpdp

#endif // ULPDP_DATA_DATASET_H
