#include "data/dataset.h"

#include <algorithm>

#include "common/logging.h"
#include "common/stats.h"

namespace ulpdp {

double
Dataset::observedMin() const
{
    if (values.empty())
        return 0.0;
    return *std::min_element(values.begin(), values.end());
}

double
Dataset::observedMax() const
{
    if (values.empty())
        return 0.0;
    return *std::max_element(values.begin(), values.end());
}

double
Dataset::mean() const
{
    return batch::mean(values);
}

double
Dataset::stddev() const
{
    return batch::stddev(values);
}

Dataset
Dataset::subsample(size_t max_entries) const
{
    ULPDP_ASSERT(max_entries > 0);
    if (values.size() <= max_entries)
        return *this;

    Dataset out;
    out.name = name;
    out.description = description;
    out.range = range;
    out.values.reserve(max_entries);
    // Stride sampling keeps the distribution's shape and is
    // deterministic.
    double stride = static_cast<double>(values.size()) /
                    static_cast<double>(max_entries);
    for (size_t i = 0; i < max_entries; ++i) {
        size_t idx = static_cast<size_t>(static_cast<double>(i) *
                                         stride);
        out.values.push_back(values[std::min(idx, values.size() - 1)]);
    }
    return out;
}

void
Dataset::validate() const
{
    for (double v : values) {
        if (v < range.lo || v > range.hi)
            panic("Dataset %s: value %g outside declared range "
                  "[%g, %g]", name.c_str(), v, range.lo, range.hi);
    }
}

} // namespace ulpdp
