/**
 * @file
 * Extension of Fig. 14 / Section VI-E: k-ary (generalized)
 * randomized response for multi-valued categorical sensors. Reports
 * per-category frequency-estimation MAE versus population size and
 * category count at fixed eps.
 *
 * The responses stream through the aggregation layer instead of a
 * materialized count vector: each report is one count-min add keyed
 * by category, the observed counts are read back as count-min point
 * estimates, and the frequencies come from agg::decodeKaryRR -- the
 * same closed-form unbiased inversion KaryRandomizedResponse's batch
 * estimator uses (it is that estimator, shared; the paper tables and
 * the streaming path decode identically). A heavy-hitter scan over
 * the same sketch reports the modal category per cell.
 */

#include <cmath>
#include <cstdio>
#include <iostream>
#include <random>
#include <vector>

#include "agg/decode.h"
#include "agg/sketch.h"
#include "bench_util.h"
#include "common/table.h"
#include "core/kary_randomized_response.h"

int
main()
{
    using namespace ulpdp;
    bench::banner("Extension: k-ary randomized response",
                  "eps = 1; frequency-estimation MAE (fraction of "
                  "population), 50 trials per cell;\nresponses "
                  "streamed through the agg count-min sketch and "
                  "decoded by agg::decodeKaryRR.");

    const double eps = 1.0;
    const int kTrials = 50;

    TextTable table;
    table.setHeader({"k", "truth prob p", "exact loss", "n = 300",
                     "n = 3000", "n = 30000", "HH hit%"});

    for (int k : {2, 4, 8, 16}) {
        // Zipf-ish true distribution over k categories.
        std::vector<double> truth(static_cast<size_t>(k));
        double z = 0.0;
        for (int c = 0; c < k; ++c) {
            truth[static_cast<size_t>(c)] = 1.0 / (1.0 + c);
            z += truth[static_cast<size_t>(c)];
        }
        for (auto &t : truth)
            t /= z;

        std::vector<std::string> row{
            std::to_string(k),
            TextTable::fmt(
                KaryRandomizedResponse(k, eps).truthProbability(), 3),
            TextTable::fmt(KaryRandomizedResponse(k, eps).exactLoss(),
                           4),
        };

        // Of all (n, trial) cells: how often the heavy-hitter scan's
        // top slot is the true modal category (category 0 under the
        // Zipf truth).
        int hh_hits = 0;
        int hh_cells = 0;

        for (size_t n : {300u, 3000u, 30000u}) {
            KaryRandomizedResponse rr(k, eps, 20, 50 + n + k);
            std::mt19937_64 gen(n * 13 + k);
            std::discrete_distribution<int> draw(truth.begin(),
                                                 truth.end());
            double p = rr.truthProbability();
            double q = rr.lieProbability();
            double err_sum = 0.0;
            for (int t = 0; t < kTrials; ++t) {
                // Streaming ingest: one count-min add per response.
                // 4 x 1024 counters make row collisions among <= 16
                // live categories vanishingly unlikely, so the point
                // estimates match exact counts (and the decode below
                // matches the batch estimator bit for bit).
                agg::CountMinSketch cm(4, 10);
                std::vector<double> true_counts(
                    static_cast<size_t>(k), 0.0);
                for (size_t i = 0; i < n; ++i) {
                    int cat = draw(gen);
                    true_counts[static_cast<size_t>(cat)] += 1.0;
                    cm.add(static_cast<uint64_t>(rr.respond(cat)));
                }
                std::vector<uint64_t> observed(
                    static_cast<size_t>(k), 0);
                for (int c = 0; c < k; ++c)
                    observed[static_cast<size_t>(c)] =
                        cm.estimate(static_cast<uint64_t>(c));
                auto est = agg::decodeKaryRR(observed, p, q);
                double mae = 0.0;
                for (int c = 0; c < k; ++c)
                    mae += std::abs(est[static_cast<size_t>(c)] -
                                    true_counts[
                                        static_cast<size_t>(c)]);
                err_sum += mae / k / static_cast<double>(n);

                auto hh = agg::topK(cm, static_cast<uint64_t>(k), 1);
                ++hh_cells;
                if (!hh.empty() && hh[0].item == 0)
                    ++hh_hits;
            }
            row.push_back(TextTable::fmtPercent(err_sum / kTrials,
                                                2));
        }
        row.push_back(TextTable::fmtPercent(
            hh_cells > 0
                ? static_cast<double>(hh_hits) / hh_cells
                : 0.0,
            1));
        table.addRow(row);
    }
    table.print(std::cout);

    std::printf("\nReading: error shrinks ~1/sqrt(n) at every k; "
                "more categories cost accuracy (truth probability "
                "falls toward 1/k) -- the standard generalized-RR "
                "trade-off, now measured through the streaming "
                "sketch + decoder the fleet collector uses. HH hit%% "
                "is how often the count-min heavy-hitter scan names "
                "the true modal category before any decoding.\n");
    return 0;
}
