/**
 * @file
 * Extension of Fig. 14 / Section VI-E: k-ary (generalized)
 * randomized response for multi-valued categorical sensors. Reports
 * per-category frequency-estimation MAE versus population size and
 * category count at fixed eps.
 */

#include <cmath>
#include <cstdio>
#include <iostream>
#include <random>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "core/kary_randomized_response.h"

int
main()
{
    using namespace ulpdp;
    bench::banner("Extension: k-ary randomized response",
                  "eps = 1; frequency-estimation MAE (fraction of "
                  "population), 50 trials per cell.");

    const double eps = 1.0;
    const int kTrials = 50;

    TextTable table;
    table.setHeader({"k", "truth prob p", "exact loss", "n = 300",
                     "n = 3000", "n = 30000"});

    for (int k : {2, 4, 8, 16}) {
        // Zipf-ish true distribution over k categories.
        std::vector<double> truth(static_cast<size_t>(k));
        double z = 0.0;
        for (int c = 0; c < k; ++c) {
            truth[static_cast<size_t>(c)] = 1.0 / (1.0 + c);
            z += truth[static_cast<size_t>(c)];
        }
        for (auto &t : truth)
            t /= z;

        std::vector<std::string> row{
            std::to_string(k),
            TextTable::fmt(
                KaryRandomizedResponse(k, eps).truthProbability(), 3),
            TextTable::fmt(KaryRandomizedResponse(k, eps).exactLoss(),
                           4),
        };

        for (size_t n : {300u, 3000u, 30000u}) {
            KaryRandomizedResponse rr(k, eps, 20, 50 + n + k);
            std::mt19937_64 gen(n * 13 + k);
            std::discrete_distribution<int> draw(truth.begin(),
                                                 truth.end());
            double err_sum = 0.0;
            for (int t = 0; t < kTrials; ++t) {
                std::vector<uint64_t> observed(
                    static_cast<size_t>(k), 0);
                std::vector<double> true_counts(
                    static_cast<size_t>(k), 0.0);
                for (size_t i = 0; i < n; ++i) {
                    int cat = draw(gen);
                    true_counts[static_cast<size_t>(cat)] += 1.0;
                    ++observed[static_cast<size_t>(
                        rr.respond(cat))];
                }
                auto est = rr.estimateCounts(observed);
                double mae = 0.0;
                for (int c = 0; c < k; ++c)
                    mae += std::abs(est[static_cast<size_t>(c)] -
                                    true_counts[
                                        static_cast<size_t>(c)]);
                err_sum += mae / k / static_cast<double>(n);
            }
            row.push_back(TextTable::fmtPercent(err_sum / kTrials,
                                                2));
        }
        table.addRow(row);
    }
    table.print(std::cout);

    std::printf("\nReading: error shrinks ~1/sqrt(n) at every k; "
                "more categories cost accuracy (truth probability "
                "falls toward 1/k) -- the standard generalized-RR "
                "trade-off, now measurable on the same harness as "
                "the numeric mechanisms.\n");
    return 0;
}
