/**
 * @file
 * Extension: end-to-end sampling latency in context. Section V
 * argues the DP-Box critical path is adequate because sensors take
 * tens of cycles to access over serial buses; this bench prices a
 * full acquire-noise-release cycle (I2C read + DP-Box noising + host
 * read) and shows noising is lost in the noise of bus time.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "sim/msp430_cost.h"
#include "sim/sensor_bus.h"

int
main()
{
    using namespace ulpdp;
    bench::banner("Extension: end-to-end sample latency context",
                  "16 MHz core; I2C sensor bus; DP-Box noising = 2 "
                  "cycles + 4 host cycles.");

    Msp430CostModel cost;
    TextTable table;
    table.setHeader({"Bus", "sensor read (cycles)",
                     "DP-Box noising", "SW noising (fixed point)",
                     "noising share w/ DP-Box"});

    for (double bus_khz : {100.0, 400.0, 1000.0, 3400.0}) {
        SensorBus bus(16e6, bus_khz * 1e3);
        uint64_t read = bus.sampleCycles(13);
        uint64_t dpbox = 2 + cost.dpBoxHostCycles();
        uint64_t sw = cost.fixedPointCycles();
        table.addRow({
            TextTable::fmt(bus_khz, 0) + " kHz I2C",
            std::to_string(read),
            std::to_string(dpbox),
            std::to_string(sw),
            TextTable::fmtPercent(
                static_cast<double>(dpbox) /
                    static_cast<double>(read + dpbox), 2),
        });
    }
    table.print(std::cout);

    std::printf("\nReading: even on the fastest bus, DP-Box noising "
                "adds ~1%% to a sample's acquisition time, versus "
                "multiplying it several-fold with software noising "
                "-- the Section V argument, quantified.\n");
    return 0;
}
