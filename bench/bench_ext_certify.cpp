/**
 * @file
 * Extension: certification-engine throughput.
 *
 * Measures the exact-PMF certifier's closed-form (segment-rank)
 * engine against the legacy per-state enumerator it replaced:
 *
 *  1. Sweep: full-registry certifyAll() wall time and aggregate
 *     URNG-states-accounted-per-second at Bu in {8, 12, 16, 20},
 *     single-thread, PMF cache cleared between points so every point
 *     pays its own enumeration. The legacy engine's full-registry
 *     time rides along per point for the wall-clock comparison.
 *
 *  2. Bu = 16 headline (the CI gate): best-of-repeats construction
 *     time of the base noise PMF under both engines at the certify
 *     tool's profile (range [-20, 60], eps = 1, Delta = d/32). The
 *     gated key bu16_speedup_vs_legacy is a time ratio on the same
 *     machine, so it is stable across runner generations in a way
 *     raw states/s floors are not (>= 50 enforced via
 *     check_bench_regression.py --min-rate); the certifyAll
 *     single-thread wall time backs the < 60 s acceptance bound.
 *
 * Flags:
 *   --repeats N    best-of repeats per timing      (default 5)
 *   --json PATH    JSON output path     (default BENCH_certify.json)
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/pmf_certifier.h"

namespace {

using namespace ulpdp;

/** The certify tool's default profile at a given URNG width. */
FxpMechanismParams
certifyProfile(int bu)
{
    FxpMechanismParams p;
    p.range = SensorRange(-20.0, 60.0);
    p.epsilon = 1.0;
    p.uniform_bits = bu;
    p.output_bits = 14;
    return p;
}

double
seconds(std::chrono::steady_clock::time_point t0,
        std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

/** Best-of-@p repeats full-registry certifyAll() wall time. */
double
certifyAllSeconds(int bu, bool legacy, int repeats)
{
    double best = 0.0;
    for (int r = 0; r < repeats; ++r) {
        FxpLaplacePmf::clearSharedCache();
        PmfCertifier certifier(certifyProfile(bu));
        certifier.setLegacyEnumeration(legacy);
        auto t0 = std::chrono::steady_clock::now();
        std::vector<MechanismCertificate> certs =
                certifier.certifyAll();
        auto t1 = std::chrono::steady_clock::now();
        if (!PmfCertifier::allCertified(certs)) {
            std::fprintf(stderr,
                         "bench_ext_certify: certification failed "
                         "at Bu=%d\n", bu);
            std::exit(1);
        }
        double s = seconds(t0, t1);
        if (r == 0 || s < best)
            best = s;
    }
    return best;
}

/** Best-of-@p repeats construction time of the base noise PMF. The
 *  fast engine is microseconds, so each repeat averages an inner
 *  batch to get above timer granularity. */
double
pmfBuildSeconds(int bu, FxpLaplacePmf::Mode mode, int repeats)
{
    FxpLaplaceConfig cfg = certifyProfile(bu).rngConfig();
    int inner = mode == FxpLaplacePmf::Mode::Enumerated ? 20 : 1;
    double best = 0.0;
    for (int r = 0; r < repeats; ++r) {
        auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < inner; ++i) {
            FxpLaplacePmf pmf(cfg, mode);
            if (pmf.totalCount() != (uint64_t{1} << bu)) {
                std::fprintf(stderr,
                             "bench_ext_certify: count slack at "
                             "Bu=%d\n", bu);
                std::exit(1);
            }
        }
        auto t1 = std::chrono::steady_clock::now();
        double s = seconds(t0, t1) / inner;
        if (r == 0 || s < best)
            best = s;
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    int repeats = 5;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::string(argv[i]) == "--repeats")
            repeats = std::atoi(argv[i + 1]);
    }
    std::string json_path = bench::jsonPathFromArgs(argc, argv);
    if (json_path.empty())
        json_path = "BENCH_certify.json";

    bench::banner("certification engine",
                  "segment-rank certifier vs legacy per-state "
                  "enumeration");

    const size_t mechanisms =
            MechanismRegistry::instance().names().size();

    bench::JsonWriter json;
    json.beginObject();
    json.field("bench", "certification engine");
    json.field("mechanisms", static_cast<uint64_t>(mechanisms));
    json.field("repeats", repeats);

    json.beginArray("sweep");
    std::printf("  %-6s %-18s %-18s %s\n", "Bu", "fast certifyAll",
                "legacy certifyAll", "states/s (fast)");
    for (int bu : {8, 12, 16, 20}) {
        double fast_s = certifyAllSeconds(bu, false, repeats);
        double legacy_s = certifyAllSeconds(bu, true, repeats);
        double states = static_cast<double>(mechanisms) *
                        static_cast<double>(uint64_t{1} << bu);
        json.beginObject();
        json.field("bu", bu);
        json.field("certify_all_seconds", fast_s);
        json.field("legacy_certify_all_seconds", legacy_s);
        json.field("states_accounted_per_second", states / fast_s);
        json.endObject();
        std::printf("  %-6d %-18.6f %-18.6f %.3g\n", bu, fast_s,
                    legacy_s, states / fast_s);
    }
    json.endArray();

    // Bu = 16 headline: PMF derivation under both engines.
    double fast_pmf = pmfBuildSeconds(
            16, FxpLaplacePmf::Mode::Enumerated, repeats);
    double legacy_pmf = pmfBuildSeconds(
            16, FxpLaplacePmf::Mode::EnumeratedLegacy, repeats);
    double certify16 = certifyAllSeconds(16, false, repeats);
    double states16 = static_cast<double>(uint64_t{1} << 16);

    json.field("bu16_fast_pmf_seconds", fast_pmf);
    json.field("bu16_legacy_pmf_seconds", legacy_pmf);
    json.field("bu16_speedup_vs_legacy", legacy_pmf / fast_pmf);
    json.field("bu16_fast_states_per_second", states16 / fast_pmf);
    json.field("bu16_certify_all_seconds_1t", certify16);

    json.endObject();
    if (!json.writeFile(json_path)) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
    }

    std::printf("  Bu=16 PMF: fast %.3g s, legacy %.3g s "
                "(%.1fx), certifyAll 1t %.3g s\n",
                fast_pmf, legacy_pmf, legacy_pmf / fast_pmf,
                certify16);
    std::printf("  JSON written to %s\n", json_path.c_str());
    return 0;
}
