/**
 * @file
 * Ablation: the batch size K of constant-time resampling
 * (Section IV-C's timing-channel mitigation). Sweeps K and reports
 * the clamp-fallback probability, the exact worst-case loss at a
 * K-specific window, and the (constant) per-report sample cost --
 * quantifying the privacy / energy trade the mitigation makes.
 */

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "core/constant_time.h"
#include "core/privacy_loss.h"
#include "core/threshold_calc.h"

int
main()
{
    using namespace ulpdp;
    bench::banner("Ablation: constant-time resampling batch size K",
                  "Sensor range [0, 10], eps = 0.5, loss bound "
                  "2*eps; window re-searched per K.");

    FxpMechanismParams p;
    p.range = SensorRange(0.0, 10.0);
    p.epsilon = 0.5;
    p.uniform_bits = 17;
    p.output_bits = 12;
    p.delta = 10.0 / 32.0;
    ThresholdCalculator calc(p);
    double bound = 2.0 * p.epsilon;

    TextTable table;
    table.setHeader({"K", "window T", "worst fallback prob",
                     "exact loss", "samples/report",
                     "timing channel"});

    for (int k : {1, 2, 3, 4, 6, 8, 16}) {
        // Search the widest window valid for this K.
        auto loss_at = [&](int64_t t) {
            ConstantTimeOutputModel model(calc.pmf(), calc.span(), t,
                                          k);
            return PrivacyLossAnalyzer::analyze(model)
                .worst_case_loss;
        };
        int64_t lo = -1;
        for (int64_t t = 0; t <= calc.pmf()->maxIndex();
             t = t == 0 ? 1 : t * 2) {
            if (loss_at(t) <= bound * (1.0 + 1e-9))
                lo = t;
            else
                break;
        }
        if (lo < 0) {
            table.addRow({std::to_string(k), "none", "-", "-", "-",
                          "-"});
            continue;
        }
        int64_t hi = std::min(lo * 2 + 1, calc.pmf()->maxIndex());
        while (hi - lo > 1) {
            int64_t mid = lo + (hi - lo) / 2;
            if (loss_at(mid) <= bound * (1.0 + 1e-9))
                lo = mid;
            else
                hi = mid;
        }

        ConstantTimeOutputModel model(calc.pmf(), calc.span(), lo, k);
        double worst_fallback = 0.0;
        for (int64_t i = 0; i <= calc.span(); ++i)
            worst_fallback = std::max(worst_fallback,
                                      model.fallbackProbability(i));
        table.addRow({
            std::to_string(k),
            std::to_string(lo),
            TextTable::fmtPercent(worst_fallback, 3),
            TextTable::fmt(loss_at(lo), 4),
            std::to_string(k),
            "none (fixed latency)",
        });
    }
    table.print(std::cout);

    std::printf("\nFor reference, plain resampling at the same bound "
                "uses T = %lld with data-dependent latency (the "
                "timing channel the paper flags), averaging ~1.001 "
                "samples/report.\n",
                static_cast<long long>(
                    calc.exactIndex(RangeControl::Resampling, 2.0)));
    std::printf("\nReading: K = 1 is thresholding; a small K (2-4) "
                "already drives the clamp fallback to ~0 while "
                "keeping latency and energy input-independent at K "
                "samples per report.\n");
    return 0;
}
