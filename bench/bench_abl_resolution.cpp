/**
 * @file
 * Ablation (extends Section VI-C): how URNG width Bu and quantization
 * step Delta drive the whole design. For each configuration we report
 * the support size, the first interior gap, the exact 2*eps
 * thresholds for both range controls, and the worst-case loss of the
 * naive baseline -- the quantitative version of "increase Bu and the
 * FxP RNG approaches the ideal one, but never reaches it".
 */

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "core/threshold_calc.h"

int
main()
{
    using namespace ulpdp;
    bench::banner("Ablation: RNG resolution (Bu, Delta) sweep",
                  "Sensor range [0, 10], eps = 0.5, loss bound "
                  "2*eps, exact searches.");

    std::printf("\n(a) URNG width sweep (Delta = d/32):\n\n");
    TextTable bu_table;
    bu_table.setHeader({"Bu", "support bins", "first gap",
                        "resamp T", "thresh T", "resample rate",
                        "naive loss"});
    for (int bu : {8, 9, 10, 12, 14, 17, 20}) {
        FxpMechanismParams p;
        p.range = SensorRange(0.0, 10.0);
        p.epsilon = 0.5;
        p.uniform_bits = bu;
        p.output_bits = 14;
        p.delta = 10.0 / 32.0;
        ThresholdCalculator calc(p);
        auto pmf = calc.pmf();

        int64_t tr = calc.exactIndex(RangeControl::Resampling, 2.0);
        int64_t tt = calc.exactIndex(RangeControl::Thresholding, 2.0);

        std::string resample_rate = "-";
        if (tr >= 0) {
            ResamplingOutputModel model(pmf, calc.span(), tr);
            double worst = 0.0;
            for (int64_t i = 0; i <= calc.span(); ++i)
                worst = std::max(worst,
                                 1.0 - model.acceptProbability(i));
            resample_rate = TextTable::fmtPercent(worst, 2);
        }
        bu_table.addRow({
            std::to_string(bu),
            std::to_string(pmf->maxIndex()),
            std::to_string(pmf->firstInteriorGap()),
            tr >= 0 ? std::to_string(tr) : "none",
            tt >= 0 ? std::to_string(tt) : "none",
            resample_rate,
            "inf",
        });
    }
    bu_table.print(std::cout);

    std::printf("\n(b) Quantization step sweep (Bu = 17):\n\n");
    TextTable d_table;
    d_table.setHeader({"Delta", "span d/Delta", "support bins",
                       "first gap", "resamp T (value)",
                       "thresh T (value)"});
    for (int denom : {8, 16, 32, 64, 128}) {
        FxpMechanismParams p;
        p.range = SensorRange(0.0, 10.0);
        p.epsilon = 0.5;
        p.uniform_bits = 17;
        p.output_bits = 16;
        p.delta = 10.0 / denom;
        ThresholdCalculator calc(p);
        auto pmf = calc.pmf();
        int64_t tr = calc.exactIndex(RangeControl::Resampling, 2.0);
        int64_t tt = calc.exactIndex(RangeControl::Thresholding, 2.0);
        d_table.addRow({
            "d/" + std::to_string(denom),
            std::to_string(calc.span()),
            std::to_string(pmf->maxIndex()),
            std::to_string(pmf->firstInteriorGap()),
            tr >= 0 ? TextTable::fmt(tr * p.delta, 1) : "none",
            tt >= 0 ? TextTable::fmt(tt * p.delta, 1) : "none",
        });
    }
    d_table.print(std::cout);

    std::printf("\nExpected shape: thresholds grow with Bu (finer "
                "tail probabilities hold the bound farther out) and "
                "*shrink in value terms* as Delta gets finer (per-"
                "bin URNG counts drop, so tail gaps appear earlier "
                "in value units); around Bu ~ 8 resampling windows "
                "become tiny and resample rates explode; the naive "
                "baseline is never LDP at any resolution.\n");
    return 0;
}
