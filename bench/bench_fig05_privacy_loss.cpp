/**
 * @file
 * Reproduces the Section III-A3 analysis (and the loss-vs-output view
 * the paper develops into Fig. 8): the privacy loss of the naive
 * fixed-point Laplace mechanism as a function of the noised output,
 * showing bounded loss inside the sensor range and infinite loss in
 * the regions only some inputs can reach.
 */

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "core/output_model.h"
#include "core/privacy_loss.h"
#include "core/threshold_calc.h"

int
main()
{
    using namespace ulpdp;
    bench::banner("Section III-A3: privacy loss of the naive FxP "
                  "Laplace mechanism",
                  "Sensor range [0, 10], eps = 0.5, Bu = 17, "
                  "Delta = 10/2^5.");

    FxpMechanismParams p;
    p.range = SensorRange(0.0, 10.0);
    p.epsilon = 0.5;
    p.uniform_bits = 17;
    p.output_bits = 12;
    p.delta = 10.0 / 32.0;

    ThresholdCalculator calc(p);
    NaiveOutputModel model(calc.pmf(), calc.span());
    LossReport report = PrivacyLossAnalyzer::analyze(model);

    std::printf("\nworst-case loss: %s (%llu outputs with infinite "
                "loss)\n\n",
                report.bounded ? "bounded" : "INFINITE",
                static_cast<unsigned long long>(
                    report.infinite_outputs));

    TextTable table;
    table.setHeader({"output value", "loss / eps", "note"});
    auto curve = PrivacyLossAnalyzer::lossCurve(model);
    // Sample the curve: dense near the interesting transitions.
    int64_t prev_printed = INT64_MIN;
    bool was_infinite = false;
    for (const auto &pt : curve) {
        bool infinite = std::isinf(pt.loss);
        bool transition = infinite != was_infinite;
        was_infinite = infinite;
        if (!transition && pt.output_index - prev_printed < 64 &&
            pt.output_index % 64 != 0)
            continue;
        prev_printed = pt.output_index;
        double value = static_cast<double>(pt.output_index) * p.delta;
        table.addRow({
            TextTable::fmt(value, 2),
            infinite ? "inf" : TextTable::fmt(pt.loss / p.epsilon, 3),
            transition ? "<- boundedness changes here" : "",
        });
    }
    table.print(std::cout);

    std::printf("\nExpected shape (paper): loss ~1x eps for outputs "
                "inside [m, M], growing with |output|, and INFINITE "
                "once the output is only producible by a subset of "
                "inputs -- naive FxP noising is not LDP.\n");
    return 0;
}
