#include "bench_util.h"

#include <cmath>
#include <cstdio>

#include "common/logging.h"
#include "core/ideal_laplace_mechanism.h"
#include "core/fxp_mechanism.h"
#include "core/privacy_loss.h"
#include "core/resampling_mechanism.h"
#include "core/thresholding_mechanism.h"
#include "data/generators.h"

namespace ulpdp {
namespace bench {

void
banner(const std::string &title, const std::string &what)
{
    // Benches snap many ranges onto coarse grids on purpose; the
    // per-mechanism snap warnings would drown the tables.
    setLoggingEnabled(false);

    std::printf("======================================================"
                "=====\n");
    std::printf("%s\n", title.c_str());
    std::printf("%s\n", what.c_str());
    std::printf("======================================================"
                "=====\n");
}

FxpMechanismParams
standardParams(const Dataset &data, double epsilon, uint64_t seed)
{
    FxpMechanismParams p;
    p.range = data.range;
    p.epsilon = epsilon;
    p.uniform_bits = 17;
    p.output_bits = 14;
    p.delta = data.range.length() / 32.0;
    p.seed = seed;
    return p;
}

std::vector<SettingRow>
runFourSettings(const Dataset &data, const Query &query, double epsilon,
                double loss_multiple, int trials, uint64_t seed)
{
    FxpMechanismParams p = standardParams(data, epsilon, seed);
    ThresholdCalculator calc(p);
    auto pmf = calc.pmf();

    int64_t t_resamp =
        calc.exactIndex(RangeControl::Resampling, loss_multiple);
    int64_t t_thresh =
        calc.exactIndex(RangeControl::Thresholding, loss_multiple);
    if (t_resamp < 0 || t_thresh < 0)
        fatal("runFourSettings: no valid threshold for loss bound "
              "%g * eps on dataset %s", loss_multiple,
              data.name.c_str());

    UtilityEvaluator eval(trials);
    std::vector<SettingRow> rows;

    double bound = loss_multiple * epsilon;

    {
        SettingRow row;
        row.setting = "Ideal Local DP";
        IdealLaplaceMechanism mech(p.range, epsilon, seed);
        row.util = eval.evaluate(data.values, mech, query);
        row.ldp = true;
        row.worst_loss = epsilon;
        rows.push_back(row);
    }
    {
        SettingRow row;
        row.setting = "FxP HW Baseline";
        NaiveFxpMechanism mech(p);
        row.util = eval.evaluate(data.values, mech, query);
        NaiveOutputModel model(pmf, calc.span());
        LossReport rep = PrivacyLossAnalyzer::analyze(model);
        row.ldp = rep.bounded && rep.worst_case_loss <= bound + 1e-9;
        row.worst_loss = rep.worst_case_loss;
        rows.push_back(row);
    }
    {
        SettingRow row;
        row.setting = "Resampling";
        ResamplingMechanism mech(p, t_resamp);
        row.util = eval.evaluate(data.values, mech, query);
        ResamplingOutputModel model(pmf, calc.span(), t_resamp);
        LossReport rep = PrivacyLossAnalyzer::analyze(model);
        row.ldp = rep.bounded && rep.worst_case_loss <= bound + 1e-9;
        row.worst_loss = rep.worst_case_loss;
        rows.push_back(row);
    }
    {
        SettingRow row;
        row.setting = "Thresholding";
        ThresholdingMechanism mech(p, t_thresh);
        row.util = eval.evaluate(data.values, mech, query);
        ThresholdingOutputModel model(pmf, calc.span(), t_thresh);
        LossReport rep = PrivacyLossAnalyzer::analyze(model);
        row.ldp = rep.bounded && rep.worst_case_loss <= bound + 1e-9;
        row.worst_loss = rep.worst_case_loss;
        rows.push_back(row);
    }
    return rows;
}

std::vector<Dataset>
benchDatasets(size_t max_entries)
{
    std::vector<Dataset> all = makeAllTableOneDatasets();
    for (auto &d : all) {
        if (d.size() > max_entries)
            d = d.subsample(max_entries);
    }
    return all;
}

} // namespace bench
} // namespace ulpdp
