#include "bench_util.h"

#include <cmath>
#include <cstdio>

#include "common/logging.h"
#include "common/stats.h"
#include "data/generators.h"
#include "fleet/fleet.h"

namespace ulpdp {
namespace bench {

void
banner(const std::string &title, const std::string &what)
{
    // Benches snap many ranges onto coarse grids on purpose; the
    // per-mechanism snap warnings would drown the tables.
    setLoggingEnabled(false);

    std::printf("======================================================"
                "=====\n");
    std::printf("%s\n", title.c_str());
    std::printf("%s\n", what.c_str());
    std::printf("======================================================"
                "=====\n");
}

std::string
jsonPathFromArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--json") {
            if (i + 1 >= argc)
                fatal("--json requires a path argument");
            return argv[i + 1];
        }
    }
    return "";
}

FxpMechanismParams
standardParams(const Dataset &data, double epsilon, uint64_t seed)
{
    FxpMechanismParams p;
    p.range = data.range;
    p.epsilon = epsilon;
    p.uniform_bits = 17;
    p.output_bits = 14;
    p.delta = data.range.length() / 32.0;
    p.seed = seed;
    return p;
}

std::vector<SettingRow>
runFourSettings(const Dataset &data, const Query &query, double epsilon,
                double loss_multiple, int trials, uint64_t seed)
{
    if (trials < 1)
        fatal("runFourSettings: trials must be positive");
    FxpMechanismParams p = standardParams(data, epsilon, seed);

    // Four cohorts of one fleet: entry i = node i, materialized so the
    // query can be evaluated per trial after the run. The per-cohort
    // threshold search and exact loss analysis happen inside the
    // runner (fatal when no threshold satisfies the bound, matching
    // the old behaviour).
    FleetConfig fc;
    fc.master_seed = seed;
    // Table-sized cohorts: small blocks so even a 100-entry dataset
    // gives the thread pool something to balance.
    fc.block_nodes = 256;
    auto makeCohort = [&](const char *name, CohortMechanism m) {
        CohortConfig c;
        c.name = name;
        c.mechanism = m;
        c.params = p;
        c.loss_multiple = loss_multiple;
        c.values = data.values;
        c.reports_per_node = static_cast<uint32_t>(trials);
        c.materialize = true;
        return c;
    };
    fc.cohorts = {
        makeCohort("Ideal Local DP", CohortMechanism::Ideal),
        makeCohort("FxP HW Baseline", CohortMechanism::Naive),
        makeCohort("Resampling", CohortMechanism::Resampling),
        makeCohort("Thresholding", CohortMechanism::Thresholding),
    };

    FleetRunner runner(std::move(fc));
    FleetReport report = runner.run();

    double true_value = query.evaluate(data.values);
    std::vector<SettingRow> rows;
    for (const CohortResult &c : report.cohorts) {
        SettingRow row;
        row.setting = c.name;

        RunningStats err;
        for (int t = 0; t < trials; ++t) {
            double answer = query.evaluate(
                c.trialReports(static_cast<uint32_t>(t)));
            err.add(std::abs(answer - true_value));
        }
        row.util.mae = err.mean();
        row.util.mae_std = err.stddev();
        row.util.true_value = true_value;
        row.util.relative_error = true_value != 0.0
            ? row.util.mae / std::abs(true_value)
            : row.util.mae;
        row.util.samples_drawn = c.samples_drawn;
        row.util.reports = c.reports;

        row.ldp = c.ldp;
        row.worst_loss = c.worst_loss;
        rows.push_back(std::move(row));
    }
    return rows;
}

std::vector<Dataset>
benchDatasets(size_t max_entries)
{
    std::vector<Dataset> all = makeAllTableOneDatasets();
    for (auto &d : all) {
        if (d.size() > max_entries)
            d = d.subsample(max_entries);
    }
    return all;
}

} // namespace bench
} // namespace ulpdp
