#include "bench_util.h"

#include <cmath>
#include <cstdio>

#include "agg/decode.h"
#include "common/logging.h"
#include "common/stats.h"
#include "data/generators.h"
#include "fleet/fleet.h"
#include "query/query.h"

namespace ulpdp {
namespace bench {

namespace {

/**
 * Answer @p query from one trial's decoded input-frequency estimate.
 * Returns false when the decoder serves no estimator for the query
 * (the row then reports the streaming columns as unsupported).
 */
bool
decodedAnswer(const Query &query, const agg::DecodedFrequencies &d,
              double input_value0, double delta, double *answer)
{
    const std::string name = query.name();
    if (name == "mean") {
        *answer = d.mean;
    } else if (name == "median") {
        *answer = d.median;
    } else if (name == "variance") {
        *answer = d.variance;
    } else if (name == "stddev") {
        *answer = std::sqrt(d.variance);
    } else if (name == "count") {
        auto *count = dynamic_cast<const CountAboveQuery *>(&query);
        if (count == nullptr)
            return false;
        *answer = agg::decodedCountAbove(d, input_value0, delta,
                                         count->threshold());
    } else {
        return false;
    }
    return true;
}

} // anonymous namespace

void
banner(const std::string &title, const std::string &what)
{
    // Benches snap many ranges onto coarse grids on purpose; the
    // per-mechanism snap warnings would drown the tables.
    setLoggingEnabled(false);

    std::printf("======================================================"
                "=====\n");
    std::printf("%s\n", title.c_str());
    std::printf("%s\n", what.c_str());
    std::printf("======================================================"
                "=====\n");
}

std::string
jsonPathFromArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--json") {
            if (i + 1 >= argc)
                fatal("--json requires a path argument");
            return argv[i + 1];
        }
    }
    return "";
}

FxpMechanismParams
standardParams(const Dataset &data, double epsilon, uint64_t seed)
{
    FxpMechanismParams p;
    p.range = data.range;
    p.epsilon = epsilon;
    p.uniform_bits = 17;
    p.output_bits = 14;
    p.delta = data.range.length() / 32.0;
    p.seed = seed;
    return p;
}

std::vector<SettingRow>
runFourSettings(const Dataset &data, const Query &query, double epsilon,
                double loss_multiple, int trials, uint64_t seed)
{
    if (trials < 1)
        fatal("runFourSettings: trials must be positive");
    FxpMechanismParams p = standardParams(data, epsilon, seed);

    // Four cohorts of one fleet: entry i = node i, materialized so the
    // query can be evaluated per trial after the run. The per-cohort
    // threshold search and exact loss analysis happen inside the
    // runner (fatal when no threshold satisfies the bound, matching
    // the old behaviour).
    FleetConfig fc;
    fc.master_seed = seed;
    // Table-sized cohorts: small blocks so even a 100-entry dataset
    // gives the thread pool something to balance.
    fc.block_nodes = 256;
    auto makeCohort = [&](const char *name, CohortMechanism m) {
        CohortConfig c;
        c.name = name;
        c.mechanism = m;
        c.params = p;
        c.loss_multiple = loss_multiple;
        c.values = data.values;
        c.reports_per_node = static_cast<uint32_t>(trials);
        c.materialize = true;
        // Streaming aggregation alongside the materialized path:
        // per-trial sketch rows let the agg decoder answer the same
        // query per trial, so the tables compare both estimators on
        // identical reports. Ideal has no output grid and skips it.
        c.agg.enabled = m != CohortMechanism::Ideal;
        c.agg.per_trial = true;
        return c;
    };
    // The registry mechanisms select by *name* -- the cohort planner
    // resolves scale corrections / rounding modes through the
    // registered lowering, so these rows exercise the same path a
    // user mixing mechanisms would.
    auto makeNamedCohort = [&](const char *name,
                               const char *registry_name) {
        CohortConfig c = makeCohort(name, CohortMechanism::Ideal);
        c.mechanism_name = registry_name;
        c.agg.enabled = true;
        return c;
    };
    fc.cohorts = {
        makeCohort("Ideal Local DP", CohortMechanism::Ideal),
        makeCohort("FxP HW Baseline", CohortMechanism::Naive),
        makeCohort("Resampling", CohortMechanism::Resampling),
        makeCohort("Thresholding", CohortMechanism::Thresholding),
        makeNamedCohort("Bounded Laplace", "bounded-laplace"),
        makeNamedCohort("Discrete Laplace", "discrete-laplace"),
    };

    FleetRunner runner(std::move(fc));
    FleetReport report = runner.run();

    double true_value = query.evaluate(data.values);
    std::vector<SettingRow> rows;
    for (const CohortResult &c : report.cohorts) {
        SettingRow row;
        row.setting = c.name;

        RunningStats err;
        for (int t = 0; t < trials; ++t) {
            double answer = query.evaluate(
                c.trialReports(static_cast<uint32_t>(t)));
            err.add(std::abs(answer - true_value));
        }
        row.util.mae = err.mean();
        row.util.mae_std = err.stddev();
        row.util.true_value = true_value;
        row.util.relative_error = true_value != 0.0
            ? row.util.mae / std::abs(true_value)
            : row.util.mae;
        row.util.samples_drawn = c.samples_drawn;
        row.util.reports = c.reports;

        row.ldp = c.ldp;
        row.worst_loss = c.worst_loss;

        // Streaming estimator: decode each trial's sketch row and
        // answer the query from the decoded input frequencies.
        if (c.agg) {
            const CohortAggResult &ar = *c.agg;
            RunningStats agg_err;
            bool supported = true;
            for (int t = 0; t < trials && supported; ++t) {
                agg::DecodedFrequencies d = ar.decoder->decode(
                    ar.sketch.trialSlots(static_cast<uint32_t>(t)),
                    ar.input_value0, ar.delta);
                double answer = 0.0;
                supported = decodedAnswer(query, d, ar.input_value0,
                                          ar.delta, &answer);
                if (supported)
                    agg_err.add(std::abs(answer - true_value));
            }
            row.agg_supported = supported;
            if (supported) {
                row.agg_mae = agg_err.mean();
                row.agg_mae_std = agg_err.stddev();
            }
        }
        rows.push_back(std::move(row));
    }
    return rows;
}

std::vector<Dataset>
benchDatasets(size_t max_entries)
{
    std::vector<Dataset> all = makeAllTableOneDatasets();
    for (auto &d : all) {
        if (d.size() > max_entries)
            d = d.subsample(max_entries);
    }
    return all;
}

} // namespace bench
} // namespace ulpdp
