/**
 * @file
 * Extension (Section IV's multi-sensor concern): a wearable with
 * three sensors sharing one privacy budget pool. Shows that the
 * combined privacy loss across all sensors is capped by the pool --
 * an adversary correlating streams gains no more than the pool
 * allows -- and how the sensors contend for it.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "core/shared_budget.h"

int
main()
{
    using namespace ulpdp;
    bench::banner("Extension: shared budget across sensors",
                  "Accelerometer + heart rate + barometer on one "
                  "pool (B = 30), eps = 0.5 each, thresholding.");

    auto make_params = [](double lo, double hi, uint64_t seed) {
        FxpMechanismParams p;
        p.range = SensorRange(lo, hi);
        p.epsilon = 0.5;
        p.uniform_bits = 17;
        p.output_bits = 14;
        p.delta = (hi - lo) / 32.0;
        p.seed = seed;
        return p;
    };

    SharedBudgetPool pool(30.0);

    FxpMechanismParams pa = make_params(-2.0, 2.0, 11); // accel, g
    FxpMechanismParams ph = make_params(40.0, 200.0, 12); // HR, bpm
    FxpMechanismParams pb = make_params(950.0, 1050.0, 13); // hPa

    auto segs = [](const FxpMechanismParams &p) {
        ThresholdCalculator calc(p);
        return LossSegments::compute(calc,
                                     RangeControl::Thresholding,
                                     {1.5, 2.0});
    };
    BudgetedSensor accel("accelerometer", pa,
                         RangeControl::Thresholding, segs(pa), pool);
    BudgetedSensor heart("heart rate", ph,
                         RangeControl::Thresholding, segs(ph), pool);
    BudgetedSensor baro("barometer", pb,
                        RangeControl::Thresholding, segs(pb), pool);

    // An app polls all three sensors in lockstep.
    const int kRounds = 60;
    for (int i = 0; i < kRounds; ++i) {
        accel.request(0.35);
        heart.request(72.0);
        baro.request(1013.0);
    }

    TextTable table;
    table.setHeader({"Sensor", "fresh reports", "cache replays"});
    for (const BudgetedSensor *s : {&accel, &heart, &baro}) {
        table.addRow({
            s->name(),
            std::to_string(s->freshReports()),
            std::to_string(s->cacheHits()),
        });
    }
    table.print(std::cout);

    std::printf("\npool: charged %.3f of %.1f nats total across all "
                "sensors; remaining %.3f\n",
                pool.totalCharged(), pool.initialBudget(),
                pool.remaining());
    std::printf("\nInvariant demonstrated: sum of losses over ALL "
                "streams <= pool budget, so even an adversary "
                "correlating the three streams faces a single "
                "composition bound (the Section IV requirement).\n");
    return 0;
}
