/**
 * @file
 * Reproduces Fig. 14: the DP-Box reconfigured for randomized response
 * (threshold zero) on the binary gender column of the Statlog heart
 * dataset. MAE of the debiased male-population estimate versus the
 * number of data entries: accuracy improves with population size
 * while every individual's answer stays eps-LDP.
 */

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "core/randomized_response.h"
#include "data/generators.h"

int
main()
{
    using namespace ulpdp;
    bench::banner("Fig. 14: randomized response via DP-Box "
                  "(threshold zero)",
                  "Binary gender data, true male fraction 0.68, "
                  "eps = 1; MAE of the debiased count over 200 "
                  "trials.");

    FxpMechanismParams p;
    p.range = SensorRange(0.0, 1.0);
    p.epsilon = 1.0;
    p.uniform_bits = 17;
    p.output_bits = 14;
    p.delta = 1.0 / 32.0;

    RandomizedResponse rr(p);
    std::printf("\nflip probability q = %.4f, exact loss = %.4f "
                "(<= eps = %.1f)\n\n",
                rr.flipProbability(), rr.exactLoss(), p.epsilon);

    const double male_fraction = 0.68;
    const int kTrials = 200;

    TextTable table;
    table.setHeader({"entries", "MAE of male-count estimate",
                     "MAE / entries"});
    for (size_t n : {100u, 270u, 1000u, 3000u, 10000u, 30000u}) {
        Dataset gender = makeStatlogGender(n, male_fraction,
                                           1000 + n);
        double true_count = 0.0;
        for (double v : gender.values)
            true_count += v;

        double err_sum = 0.0;
        for (int t = 0; t < kTrials; ++t) {
            size_t hi = 0;
            for (double v : gender.values) {
                if (rr.noise(v).value == 1.0)
                    ++hi;
            }
            double est = rr.estimateProportion(
                             static_cast<double>(hi) /
                             static_cast<double>(n)) *
                         static_cast<double>(n);
            err_sum += std::abs(est - true_count);
        }
        double mae = err_sum / kTrials;
        table.addRow({
            std::to_string(n),
            TextTable::fmt(mae, 2),
            TextTable::fmtPercent(mae / static_cast<double>(n), 2),
        });
    }
    table.print(std::cout);

    std::printf("\nExpected shape (paper Fig. 14): relative error of "
                "the population count shrinks as ~1/sqrt(n) while "
                "each individual's report stays private.\n");
    return 0;
}
