/**
 * @file
 * Reproduces Fig. 4: the fixed-point Laplace RNG distribution versus
 * the ideal Lap(20).
 *
 *  (a) In the bulk the two are nearly identical.
 *  (b) Zoomed into the tail, the FxP RNG's probabilities are
 *      quantized to multiples of 2^-(Bu+1), its support is bounded at
 *      L = lambda * Bu * ln 2, and bins whose ideal probability falls
 *      below the quantum become exactly zero (interior gaps).
 */

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "rng/fxp_laplace_pmf.h"
#include "rng/ideal_laplace.h"

int
main()
{
    using namespace ulpdp;
    bench::banner("Fig. 4: ideal vs fixed-point Laplace RNG "
                  "distribution",
                  "Lap(20), Bu = 17, By = 12, Delta = 10/2^5 -- the "
                  "paper's example configuration.");

    FxpLaplaceConfig cfg;
    cfg.uniform_bits = 17;
    cfg.output_bits = 12;
    cfg.delta = 10.0 / 32.0;
    cfg.lambda = 20.0;

    FxpLaplacePmf pmf(cfg);
    IdealLaplace ideal(cfg.lambda);

    std::printf("\n(a) Bulk of the distribution (probability per "
                "Delta-bin):\n\n");
    TextTable bulk;
    bulk.setHeader({"noise value", "ideal p(bin)", "FxP p(bin)",
                    "rel.diff"});
    for (int64_t k = 0; k <= 160; k += 16) {
        double x = static_cast<double>(k) * cfg.delta;
        double ideal_p = ideal.pdf(x) * cfg.delta;
        double fxp_p = pmf.pmf(k);
        bulk.addRow({
            TextTable::fmt(x, 2),
            TextTable::fmt(ideal_p, 8),
            TextTable::fmt(fxp_p, 8),
            TextTable::fmtPercent(
                ideal_p > 0.0 ? (fxp_p - ideal_p) / ideal_p : 0.0, 2),
        });
    }
    bulk.print(std::cout);

    std::printf("\n(b) Tail region (the paper's zoom): quantized "
                "probabilities, gaps, bounded support\n\n");
    double quantum = std::ldexp(1.0, -(cfg.uniform_bits + 1));
    std::printf("probability quantum 2^-(Bu+1) = %.3e\n", quantum);
    std::printf("support bound L = lambda*Bu*ln2 = %.2f "
                "(index %lld)\n",
                cfg.lambda * cfg.uniform_bits * std::log(2.0),
                static_cast<long long>(pmf.maxIndex()));
    std::printf("first interior gap at index %lld (value %.2f)\n\n",
                static_cast<long long>(pmf.firstInteriorGap()),
                static_cast<double>(pmf.firstInteriorGap()) *
                    cfg.delta);

    TextTable tail;
    tail.setHeader({"noise value", "ideal p(bin)", "FxP p(bin)",
                    "URNG states", "note"});
    int64_t start = pmf.firstInteriorGap() - 5;
    for (int64_t k = start; k <= pmf.maxIndex() + 2; ++k) {
        if (k > start + 14 && k < pmf.maxIndex() - 6)
            continue; // elide the long middle stretch
        double x = static_cast<double>(k) * cfg.delta;
        double ideal_p = ideal.pdf(x) * cfg.delta;
        uint64_t states = pmf.magnitudeCount(k);
        std::string note;
        if (k > pmf.maxIndex())
            note = "beyond support";
        else if (states == 0)
            note = "GAP: unreachable";
        tail.addRow({
            TextTable::fmt(x, 2),
            TextTable::fmt(ideal_p, 10),
            TextTable::fmt(pmf.pmf(k), 10),
            std::to_string(states),
            note,
        });
    }
    tail.print(std::cout);

    std::printf("\nExpected shape (paper Fig. 4): near-identical bulk; "
                "discrete tail probabilities that hit exact zeros "
                "while the ideal density stays positive.\n");
    return 0;
}
