/**
 * @file
 * Extension: the floating-point counterpart of the paper's
 * fixed-point failure (Mironov 2012, cited as [27]): "naive software
 * implementation of a DP mechanism using floating point numbers also
 * suffers from infinite privacy loss for the same reason."
 *
 * We run the textbook double-precision Laplace inversion
 * y = x + lambda * log(u) over an exhaustive grid of uniform inputs
 * at float32 precision and compare the *sets* of achievable outputs
 * for two adjacent inputs: the supports differ, so some outputs
 * identify the input -- exactly the fixed-point story, caused by
 * rounding instead of quantization.
 */

#include <cmath>
#include <cstdio>
#include <set>

#include "bench_util.h"

int
main()
{
    using namespace ulpdp;
    bench::banner("Extension: floating-point Laplace is not LDP "
                  "either (Mironov-style artifact)",
                  "float32 arithmetic, 2^20 uniform grid, "
                  "lambda = 20, inputs 5.0 vs 5.5.");

    const float lambda = 20.0f;
    const int bits = 20;
    const uint32_t n = 1u << bits;

    auto support_of = [&](float x) {
        std::set<float> outputs;
        for (uint32_t m = 1; m <= n; ++m) {
            float u = static_cast<float>(m) /
                      static_cast<float>(n);
            // Textbook float implementation: one-sided magnitude,
            // both signs.
            float mag = -lambda * std::log(u);
            outputs.insert(x + mag);
            outputs.insert(x - mag);
        }
        return outputs;
    };

    std::set<float> s1 = support_of(5.0f);
    std::set<float> s2 = support_of(5.5f);

    size_t only1 = 0;
    size_t only2 = 0;
    for (float v : s1) {
        if (!s2.count(v))
            ++only1;
    }
    for (float v : s2) {
        if (!s1.count(v))
            ++only2;
    }

    std::printf("\nachievable outputs for x = 5.0:   %zu distinct "
                "float values\n", s1.size());
    std::printf("achievable outputs for x = 5.5:   %zu distinct "
                "float values\n", s2.size());
    std::printf("outputs only x = 5.0 can emit:    %zu\n", only1);
    std::printf("outputs only x = 5.5 can emit:    %zu\n", only2);
    std::printf("\nEvery one of those %zu exclusive outputs has "
                "INFINITE privacy loss: observing it identifies the "
                "input exactly.\n", only1 + only2);

    std::printf("\nReading: floating point does not rescue the naive "
                "implementation -- rounding creates input-dependent "
                "output grids just as fixed-point quantization "
                "creates input-dependent supports. The paper's "
                "range-control fixes (or snapping/discretising the "
                "released values, as in the fixed-point design) are "
                "needed in software too.\n");
    return 0;
}
