/**
 * @file
 * Ablation: the loss-bound multiple n (the design choice behind
 * every threshold in the paper). Larger n means a wider window --
 * closer-to-ideal noise and fewer resamples -- but each boundary
 * report may leak up to n*eps. This bench sweeps n and reports the
 * exact thresholds, worst-case losses, resampling rates, and
 * mean-query MAE, quantifying the privacy/utility/energy triangle.
 */

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "core/resampling_mechanism.h"
#include "core/threshold_calc.h"
#include "data/generators.h"
#include "query/utility.h"

int
main()
{
    using namespace ulpdp;
    bench::banner("Ablation: loss-bound multiple n",
                  "Statlog heart data, eps = 0.5, resampling; "
                  "n swept from 1.1 to 4.");

    Dataset heart = makeStatlogHeart();
    FxpMechanismParams p = bench::standardParams(heart, 0.5);
    ThresholdCalculator calc(p);
    UtilityEvaluator eval(60);

    TextTable table;
    table.setHeader({"n", "max loss (nats)", "window T",
                     "window (mm Hg)", "resample rate",
                     "mean MAE"});

    for (double n : {1.1, 1.2, 1.5, 2.0, 3.0, 4.0}) {
        int64_t t = calc.exactIndex(RangeControl::Resampling, n);
        if (t < 0) {
            table.addRow({TextTable::fmt(n, 1), "-", "none", "-",
                          "-", "-"});
            continue;
        }
        ResamplingMechanism mech(p, t);
        UtilityResult r = eval.evaluate(heart.values, mech,
                                        MeanQuery());
        table.addRow({
            TextTable::fmt(n, 1),
            TextTable::fmt(calc.exactLossAt(RangeControl::Resampling,
                                            t), 4),
            std::to_string(t),
            TextTable::fmt(static_cast<double>(t) *
                           p.resolvedDelta(), 1),
            TextTable::fmtPercent(r.avgSamplesPerReport() - 1.0, 3),
            TextTable::fmt(r.mae, 3),
        });
    }
    table.print(std::cout);

    std::printf("\nReading: by n = 1.5 the window is already wide "
                "enough that resampling is rare and utility matches "
                "the ideal case; pushing n higher buys almost "
                "nothing while linearly inflating the worst-case "
                "leak -- the paper's implicit choice of small n "
                "(1.5-2) is the right region.\n");
    return 0;
}
