/**
 * @file
 * Reproduces Table II: mean absolute error of the mean query across
 * the Table I datasets under the four evaluation settings.
 */

#include "utility_table.h"

int
main(int argc, char **argv)
{
    using namespace ulpdp;
    return bench::utilityTableMain(
        "Table II", "mean",
        [](const Dataset &) { return std::make_unique<MeanQuery>(); },
        argc, argv);
}
