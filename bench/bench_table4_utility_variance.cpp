/**
 * @file
 * Reproduces Table IV: mean absolute error of the variance query.
 */

#include "utility_table.h"

int
main(int argc, char **argv)
{
    using namespace ulpdp;
    return bench::utilityTableMain(
        "Table IV", "variance",
        [](const Dataset &) {
            return std::make_unique<VarianceQuery>();
        },
        argc, argv);
}
