/**
 * @file
 * Extension of the Section V variants table: a structural gate-count
 * model of the DP-Box. Reproduces the *trends* of the paper's
 * synthesis exploration (single-cycle CORDIC dominates area; relaxed
 * designs shrink; budget logic costs ~10%) and lets a designer sweep
 * word length / iterations without a synthesis flow.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "dpbox/area_model.h"

int
main()
{
    using namespace ulpdp;
    bench::banner("Extension: structural area model of the DP-Box",
                  "NAND2-equivalent estimates; paper synthesis "
                  "reference: 10431 gates (default), +11% budget "
                  "logic.");

    DpBoxConfig base;
    base.frac_bits = 6;
    base.word_bits = 20;
    base.uniform_bits = 17;
    base.threshold_index = 400;
    base.cordic_iterations = 32;

    std::printf("\nDefault configuration breakdown "
                "(20-bit word, 32 unrolled CORDIC stages):\n\n%s",
                DpBoxAreaModel(base).breakdown().toString().c_str());
    std::printf("(paper synthesis total: 10431 gates)\n");

    std::printf("\nVariant sweep:\n\n");
    TextTable table;
    table.setHeader({"Variant", "Gates", "vs default",
                     "Budget overhead"});
    uint64_t def = DpBoxAreaModel(base).totalGates();

    auto add = [&](const std::string &name, const DpBoxConfig &cfg,
                   const AreaModelOptions &opt) {
        DpBoxAreaModel m(cfg, opt);
        table.addRow({
            name,
            std::to_string(m.totalGates()),
            TextTable::fmtPercent(
                static_cast<double>(m.totalGates()) /
                    static_cast<double>(def) - 1.0, 1),
            cfg.budget_enabled
                ? TextTable::fmtPercent(m.budgetOverhead(), 1)
                : "-",
        });
    };

    add("default (unrolled x32)", base, AreaModelOptions());

    DpBoxConfig few = base;
    few.cordic_iterations = 20;
    add("unrolled x20 CORDIC", few, AreaModelOptions());

    AreaModelOptions iter;
    iter.unrolled_cordic = false;
    add("iterative CORDIC (32 cycles/log)", base, iter);

    DpBoxConfig wide = base;
    wide.word_bits = 24;
    add("24-bit word", wide, AreaModelOptions());

    DpBoxConfig narrow = base;
    narrow.word_bits = 16;
    add("16-bit word", narrow, AreaModelOptions());

    DpBoxConfig budget = base;
    budget.budget_enabled = true;
    budget.segments = {BudgetSegment{0, 0.5},
                       BudgetSegment{200, 0.8},
                       BudgetSegment{400, 1.0}};
    add("default + budget logic", budget, AreaModelOptions());

    table.print(std::cout);

    std::printf("\nReading: the single-cycle (unrolled) CORDIC is "
                "the area story, exactly the 'higher area penalty' "
                "the paper pays for 1-cycle logs; an iterative unit "
                "trades ~%d cycles of latency for a fraction of the "
                "area. Our minimal budget block prices at a few "
                "percent; the paper's synthesized one cost 11%% "
                "(likely a wider loss table and timers).\n",
                base.cordic_iterations);
    return 0;
}
