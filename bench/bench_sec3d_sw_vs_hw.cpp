/**
 * @file
 * Reproduces the Section III-D comparison: software noising on an
 * MSP430-class microcontroller versus the DP-Box hardware module, in
 * cycles and in energy. The paper reports 4043 cycles (20-bit fixed
 * point), 1436 cycles (half-precision float) and 4 host cycles with
 * DP-Box, for energy ratios of 894x and 318x.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "sim/energy_model.h"
#include "sim/msp430_cost.h"

int
main()
{
    using namespace ulpdp;
    bench::banner("Section III-D: software vs hardware noising",
                  "MSP430 instruction-cost model + 65 nm DP-Box "
                  "synthesis constants (see DESIGN.md).");

    Msp430CostModel soft_mul;
    Msp430CostModel hw_mul(Msp430OpCosts(), true);
    EnergyModel energy;

    uint64_t fx = soft_mul.fixedPointCycles();
    uint64_t hf = soft_mul.halfFloatCycles();
    uint64_t host = soft_mul.dpBoxHostCycles();
    const uint64_t device = 2; // DP-Box noising latency (Section V)

    TextTable table;
    table.setHeader({"Implementation", "Cycles", "Paper cycles",
                     "Energy (nJ)", "Energy ratio vs DP-Box",
                     "Paper ratio"});
    double dpbox_energy = energy.dpboxEnergy(device, host);
    table.addRow({
        "software, 20-bit fixed point",
        std::to_string(fx),
        "4043",
        TextTable::fmt(energy.softwareEnergy(fx) * 1e9, 1),
        TextTable::fmt(energy.ratio(fx, device, host), 0) + "x",
        "894x",
    });
    table.addRow({
        "software, half-precision float",
        std::to_string(hf),
        "1436",
        TextTable::fmt(energy.softwareEnergy(hf) * 1e9, 1),
        TextTable::fmt(energy.ratio(hf, device, host), 0) + "x",
        "318x",
    });
    table.addRow({
        "DP-Box (2 device + 4 host cycles)",
        std::to_string(device + host),
        "4",
        TextTable::fmt(dpbox_energy * 1e9, 3),
        "1x",
        "1x",
    });
    table.print(std::cout);

    std::printf("\nWith the MSP430 MPY hardware multiplier, software "
                "costs drop to %llu (fixed) / %llu (half-float) "
                "cycles -- still orders of magnitude above DP-Box.\n",
                static_cast<unsigned long long>(
                    hw_mul.fixedPointCycles()),
                static_cast<unsigned long long>(
                    hw_mul.halfFloatCycles()));

    std::printf("\nExpected shape (paper Section III-D): fixed-point "
                "software slowest, half-float ~3x faster, DP-Box "
                "~1000x faster; energy ratios in the hundreds.\n");
    return 0;
}
