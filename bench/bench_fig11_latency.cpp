/**
 * @file
 * Reproduces Fig. 11: average DP-Box noising latency in cycles per
 * dataset, for resampling versus thresholding. Thresholding is a
 * constant 2 cycles; every resample adds one cycle, so resampling's
 * average latency is data dependent -- but never more than one extra
 * cycle on average.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "core/resampling_mechanism.h"
#include "core/threshold_calc.h"
#include "core/thresholding_mechanism.h"

int
main()
{
    using namespace ulpdp;
    bench::banner("Fig. 11: average noising latency per dataset",
                  "Latency = 2 cycles + 1 per resample; eps = 0.5, "
                  "loss bound 2*eps, exact thresholds; datasets "
                  "capped at 4000 entries, 50 trials.");

    constexpr int kTrials = 50;
    TextTable table;
    table.setHeader({"Dataset", "Thresholding (cycles)",
                     "Resampling (cycles)", "Resample rate"});

    for (const Dataset &data : bench::benchDatasets(4000)) {
        FxpMechanismParams p = bench::standardParams(data, 0.5);
        ThresholdCalculator calc(p);
        int64_t t_r = calc.exactIndex(RangeControl::Resampling, 2.0);
        int64_t t_t = calc.exactIndex(RangeControl::Thresholding, 2.0);

        ResamplingMechanism resamp(p, t_r);
        ThresholdingMechanism thresh(p, t_t);
        for (int t = 0; t < kTrials; ++t) {
            for (double x : data.values) {
                resamp.noise(x);
                thresh.noise(x);
            }
        }

        // DP-Box latency: 2 cycles + (samples - 1) extra cycles.
        double avg_resamp_cycles =
            1.0 + resamp.averageSamplesPerReport();
        double resample_rate =
            resamp.averageSamplesPerReport() - 1.0;
        table.addRow({
            data.name,
            "2.000",
            TextTable::fmt(avg_resamp_cycles, 3),
            TextTable::fmt(resample_rate, 4),
        });
    }
    table.print(std::cout);

    std::printf("\nExpected shape (paper Fig. 11): thresholding flat "
                "at 2 cycles; resampling adds well under one cycle "
                "on average for every dataset.\n");
    return 0;
}
