/**
 * @file
 * Ablation: does the CORDIC logarithm change the privacy analysis?
 *
 * The paper's Eq. (11) analysis assumes an exact logarithm; the real
 * DP-Box computes it with CORDIC, whose finite precision can move a
 * URNG state across a quantization-bin edge. We enumerate the exact
 * PMF of the *CORDIC* pipeline at several iteration counts, count
 * how many states shift relative to the reference pipeline, and
 * recompute the exact thresholds on the device-true PMF -- showing
 * how many iterations are enough for the analysis to transfer.
 */

#include <cstdio>
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "core/output_model.h"
#include "core/privacy_loss.h"
#include "rng/fxp_laplace_pmf.h"

namespace {

using namespace ulpdp;

/** Exact threshold search against an arbitrary PMF. */
int64_t
exactThreshold(const std::shared_ptr<const NoisePmf> &pmf,
               int64_t span, double bound)
{
    int64_t lo = -1;
    for (int64_t t = 0; t <= pmf->maxIndex(); t = t == 0 ? 1 : t * 2) {
        ResamplingOutputModel model(pmf, span, t);
        if (PrivacyLossAnalyzer::analyze(model).worst_case_loss <=
            bound * (1.0 + 1e-9)) {
            lo = t;
        } else {
            break;
        }
    }
    if (lo < 0)
        return -1;
    int64_t hi = lo * 2 + 1;
    hi = std::min(hi, pmf->maxIndex());
    while (hi - lo > 1) {
        int64_t mid = lo + (hi - lo) / 2;
        ResamplingOutputModel model(pmf, span, mid);
        if (PrivacyLossAnalyzer::analyze(model).worst_case_loss <=
            bound * (1.0 + 1e-9))
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

} // anonymous namespace

int
main()
{
    bench::banner("Ablation: CORDIC precision vs the privacy "
                  "analysis",
                  "Bu = 16, Delta = 10/32, Lap(20); enumerated "
                  "device-true PMFs.");

    FxpLaplaceConfig ref_cfg;
    ref_cfg.uniform_bits = 16;
    ref_cfg.output_bits = 12;
    ref_cfg.delta = 10.0 / 32.0;
    ref_cfg.lambda = 20.0;

    FxpLaplacePmf reference(ref_cfg, FxpLaplacePmf::Mode::Enumerated);
    int64_t span = 32;
    double bound = 2.0 * 0.5;

    auto ref_pmf = std::make_shared<FxpLaplacePmf>(
        ref_cfg, FxpLaplacePmf::Mode::Enumerated);
    int64_t ref_t = exactThreshold(ref_pmf, span, bound);

    TextTable table;
    table.setHeader({"log unit", "shifted URNG states",
                     "shift rate", "exact resamp T",
                     "delta vs reference"});
    table.addRow({"reference (exact log)", "0", "0%",
                  std::to_string(ref_t), "0"});

    for (int iters : {12, 16, 20, 24, 32}) {
        FxpLaplaceConfig hw_cfg = ref_cfg;
        hw_cfg.log_mode = FxpLaplaceConfig::LogMode::Cordic;
        hw_cfg.cordic_iterations = iters;
        auto hw_pmf = std::make_shared<FxpLaplacePmf>(
            hw_cfg, FxpLaplacePmf::Mode::Enumerated);

        uint64_t shifted = 0;
        int64_t top = std::max(reference.maxIndex(),
                               hw_pmf->maxIndex());
        for (int64_t k = 0; k <= top; ++k) {
            uint64_t a = reference.magnitudeCount(k);
            uint64_t b = hw_pmf->magnitudeCount(k);
            shifted += a > b ? a - b : b - a;
        }
        shifted /= 2; // each moved state counts in two bins

        int64_t hw_t = exactThreshold(hw_pmf, span, bound);
        table.addRow({
            "CORDIC x" + std::to_string(iters),
            std::to_string(shifted),
            TextTable::fmtPercent(
                static_cast<double>(shifted) /
                    std::ldexp(1.0, ref_cfg.uniform_bits), 4),
            std::to_string(hw_t),
            std::to_string(hw_t - ref_t),
        });
    }
    table.print(std::cout);

    std::printf("\nReading: a handful of bin-edge states move under "
                "CORDIC rounding; by ~20+ iterations the exact "
                "threshold computed on the device-true PMF matches "
                "the reference analysis within a few bins -- size "
                "thresholds on the enumerated device PMF when "
                "iteration count is low.\n");
    return 0;
}
