/**
 * @file
 * Extension: analyst-side histogram deconvolution. The paper
 * evaluates mean/median/variance/count; a histogram (distribution
 * shape) is the harder ask because the LDP noise convolves it away.
 * Using the exact output model as the deconvolution kernel
 * (Richardson-Lucy EM), the analyst recovers the bimodal shape of
 * the Robot Sensors dataset from thresholded LDP reports --
 * post-processing only, no extra privacy cost.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "core/threshold_calc.h"
#include "core/thresholding_mechanism.h"
#include "data/generators.h"
#include "query/histogram_query.h"

int
main()
{
    using namespace ulpdp;
    bench::banner("Extension: histogram recovery by deconvolution",
                  "Robot Sensors (bimodal), eps = 2, thresholding at "
                  "the exact 2*eps window, 30 reports per entry.");

    Dataset robot = makeRobotSensors();
    FxpMechanismParams p = bench::standardParams(robot, 2.0);
    ThresholdCalculator calc(p);
    int64_t t = calc.exactIndex(RangeControl::Thresholding, 2.0);
    ThresholdingMechanism mech(p, t);
    ThresholdingOutputModel model(calc.pmf(), calc.span(), t);
    HistogramEstimator est(model, 400);

    // True input histogram on the mechanism grid.
    std::vector<double> truth(static_cast<size_t>(calc.span()) + 1,
                              0.0);
    std::vector<int64_t> reports;
    const int kRepeats = 30;
    for (double x : robot.values) {
        int64_t xi = mech.toIndex(x) - mech.loIndex();
        truth[static_cast<size_t>(xi)] +=
            1.0 / static_cast<double>(robot.size());
        for (int r = 0; r < kRepeats; ++r) {
            double y = mech.noise(x).value;
            reports.push_back(
                static_cast<int64_t>(std::llround(y / mech.delta())) -
                mech.loIndex());
        }
    }
    // The estimator expects absolute model indices; inputs above were
    // shifted so index 0 = range lower limit, matching the model.
    auto pi = est.estimate(reports);

    TextTable table;
    table.setHeader({"range bin (m)", "true mass", "recovered",
                     "raw output mass"});
    // Raw output histogram clipped to the input range for contrast.
    std::vector<double> raw(truth.size(), 0.0);
    for (int64_t j : reports) {
        int64_t c = std::clamp<int64_t>(j, 0, calc.span());
        raw[static_cast<size_t>(c)] +=
            1.0 / static_cast<double>(reports.size());
    }
    for (size_t i = 0; i < truth.size(); i += 2) {
        double lo = robot.range.lo +
                    static_cast<double>(i) * p.resolvedDelta();
        table.addRow({
            TextTable::fmt(lo, 2),
            TextTable::fmt(truth[i], 4),
            TextTable::fmt(pi[i], 4),
            TextTable::fmt(raw[i], 4),
        });
    }
    table.print(std::cout);

    // Shape score: total variation at the native resolution.
    double tv_est = 0.0;
    double tv_raw = 0.0;
    for (size_t i = 0; i < truth.size(); ++i) {
        tv_est += std::abs(pi[i] - truth[i]);
        tv_raw += std::abs(raw[i] - truth[i]);
    }
    std::printf("\ntotal variation to truth: deconvolved %.3f vs raw "
                "output histogram %.3f\n", tv_est / 2.0,
                tv_raw / 2.0);
    std::printf("\nReading: the raw output histogram is flattened by "
                "the Laplace kernel; the exact-model deconvolution "
                "restores both modes -- the same exact PMF that "
                "proves privacy also buys the analyst utility.\n");
    return 0;
}
