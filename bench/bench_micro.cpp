/**
 * @file
 * Component micro-benchmarks (google-benchmark): throughput of the
 * Tausworthe URNG, the CORDIC log, the fixed-point Laplace pipeline,
 * each mechanism's noise() path and the exact privacy-loss analysis.
 * These quantify host-simulation speed (how fast the model runs),
 * not device latency (see bench_fig11 / bench_sec5 for cycles).
 */

#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "core/ideal_laplace_mechanism.h"
#include "core/privacy_loss.h"
#include "core/resampling_mechanism.h"
#include "core/threshold_calc.h"
#include "core/thresholding_mechanism.h"
#include "dpbox/driver.h"
#include "query/histogram_query.h"
#include "rng/batch_sampler.h"
#include "rng/cordic.h"
#include "rng/fxp_inversion.h"
#include "rng/fxp_laplace.h"
#include "rng/taus_bank.h"
#include "rng/tausworthe.h"

namespace {

using namespace ulpdp;

FxpMechanismParams
benchParams()
{
    FxpMechanismParams p;
    p.range = SensorRange(0.0, 10.0);
    p.epsilon = 0.5;
    p.uniform_bits = 17;
    p.output_bits = 12;
    p.delta = 10.0 / 32.0;
    return p;
}

void
BM_Tausworthe(benchmark::State &state)
{
    Tausworthe rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next32());
}
BENCHMARK(BM_Tausworthe);

void
BM_TausBankNextWords(benchmark::State &state)
{
    uint64_t seeds[TausBank::kMaxLanes];
    TausBank::deriveLaneSeeds(1, seeds, TausBank::kMaxLanes);
    TausBank bank(seeds, TausBank::kMaxLanes);
    uint32_t words[TausBank::kMaxLanes];
    for (auto _ : state) {
        bank.nextWords(words);
        benchmark::DoNotOptimize(words[0]);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(TausBank::kMaxLanes));
}
BENCHMARK(BM_TausBankNextWords);

void
BM_BatchSamplerRect(benchmark::State &state)
{
    FxpLaplaceConfig cfg;
    cfg.uniform_bits = 17;
    cfg.output_bits = 14;
    cfg.delta = 10.0 / 32.0;
    cfg.lambda = 20.0;
    cfg.sample_path = FxpLaplaceConfig::SamplePath::Table;
    FxpLaplaceRng proto(cfg, 1);
    uint64_t seeds[TausBank::kMaxLanes];
    TausBank::deriveLaneSeeds(1, seeds, TausBank::kMaxLanes);
    BatchSampler bs(proto.sharedTable(), cfg.uniform_bits,
                    proto.quantizer().maxIndex());
    bs.seedLanes(seeds, TausBank::kMaxLanes);
    const size_t trials = static_cast<size_t>(state.range(0));
    std::vector<int64_t> rect(trials * TausBank::kMaxLanes);
    for (auto _ : state) {
        bs.sampleRect(rect.data(), trials);
        benchmark::DoNotOptimize(rect[0]);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(rect.size()));
}
BENCHMARK(BM_BatchSamplerRect)->Arg(64)->Arg(1024);

void
BM_CordicLog(benchmark::State &state)
{
    CordicLog cordic(static_cast<int>(state.range(0)));
    uint64_t m = 1;
    for (auto _ : state) {
        m = (m % 131071) + 1;
        benchmark::DoNotOptimize(cordic.lnUnitIndexRaw(m, 17));
    }
}
BENCHMARK(BM_CordicLog)->Arg(16)->Arg(32)->Arg(48);

void
BM_FxpLaplaceSample(benchmark::State &state)
{
    FxpLaplaceConfig cfg;
    cfg.uniform_bits = 17;
    cfg.output_bits = 12;
    cfg.delta = 10.0 / 32.0;
    cfg.lambda = 20.0;
    cfg.log_mode = state.range(0) == 0
        ? FxpLaplaceConfig::LogMode::Reference
        : FxpLaplaceConfig::LogMode::Cordic;
    FxpLaplaceRng rng(cfg);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.sampleIndex());
}
BENCHMARK(BM_FxpLaplaceSample)->Arg(0)->Arg(1);

void
BM_IdealMechanism(benchmark::State &state)
{
    IdealLaplaceMechanism mech(SensorRange(0.0, 10.0), 0.5);
    for (auto _ : state)
        benchmark::DoNotOptimize(mech.noise(5.0).value);
}
BENCHMARK(BM_IdealMechanism);

void
BM_ThresholdingMechanism(benchmark::State &state)
{
    ThresholdingMechanism mech(benchParams(), 418);
    for (auto _ : state)
        benchmark::DoNotOptimize(mech.noise(5.0).value);
}
BENCHMARK(BM_ThresholdingMechanism);

void
BM_ResamplingMechanism(benchmark::State &state)
{
    ResamplingMechanism mech(benchParams(),
                             state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(mech.noise(5.0).value);
}
BENCHMARK(BM_ResamplingMechanism)->Arg(60)->Arg(418);

void
BM_ExactLossAnalysis(benchmark::State &state)
{
    ThresholdCalculator calc(benchParams());
    ThresholdingOutputModel model(calc.pmf(), calc.span(), 418);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            PrivacyLossAnalyzer::analyze(model).worst_case_loss);
    }
}
BENCHMARK(BM_ExactLossAnalysis);

void
BM_ExactThresholdSearch(benchmark::State &state)
{
    ThresholdCalculator calc(benchParams());
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            calc.exactIndex(RangeControl::Resampling, 2.0));
    }
}
BENCHMARK(BM_ExactThresholdSearch);

void
BM_GenericGaussianSample(benchmark::State &state)
{
    FxpInversionConfig cfg;
    cfg.uniform_bits = 17;
    cfg.output_bits = 12;
    cfg.delta = 10.0 / 32.0;
    FxpInversionRng rng(cfg,
                        std::make_shared<GaussianMagnitude>(20.0));
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.sampleIndex());
}
BENCHMARK(BM_GenericGaussianSample);

void
BM_GenericStaircaseSample(benchmark::State &state)
{
    FxpInversionConfig cfg;
    cfg.uniform_bits = 17;
    cfg.output_bits = 12;
    cfg.delta = 10.0 / 32.0;
    FxpInversionRng rng(
        cfg, std::make_shared<StaircaseMagnitude>(
                 10.0, 0.5, StaircaseMagnitude::optimalGamma(0.5)));
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.sampleIndex());
}
BENCHMARK(BM_GenericStaircaseSample);

void
BM_EnumeratePmf(benchmark::State &state)
{
    FxpLaplaceConfig cfg;
    cfg.uniform_bits = static_cast<int>(state.range(0));
    cfg.output_bits = 12;
    cfg.delta = 10.0 / 32.0;
    cfg.lambda = 20.0;
    for (auto _ : state) {
        FxpLaplacePmf pmf(cfg, FxpLaplacePmf::Mode::Enumerated);
        benchmark::DoNotOptimize(pmf.maxIndex());
    }
}
BENCHMARK(BM_EnumeratePmf)->Arg(12)->Arg(16)->Arg(20);

void
BM_HistogramDeconvolution(benchmark::State &state)
{
    auto pmf = std::make_shared<FxpLaplacePmf>(
        benchParams().rngConfig());
    ThresholdingOutputModel model(pmf, 32, 200);
    HistogramEstimator est(model,
                           static_cast<int>(state.range(0)));
    std::vector<uint64_t> counts(est.numOutputs(), 3);
    for (auto _ : state)
        benchmark::DoNotOptimize(est.estimateFromCounts(counts));
}
BENCHMARK(BM_HistogramDeconvolution)->Arg(50)->Arg(300);

void
BM_DpBoxNoising(benchmark::State &state)
{
    DpBoxConfig cfg;
    cfg.frac_bits = 5;
    cfg.word_bits = 20;
    cfg.uniform_bits = 17;
    cfg.threshold_index = 418;
    cfg.thresholding = true;
    DpBoxDriver drv(cfg);
    drv.initialize(1e12, 0);
    drv.configure(0.5, SensorRange(0.0, 10.0));
    for (auto _ : state)
        benchmark::DoNotOptimize(drv.noise(5.0).value);
}
BENCHMARK(BM_DpBoxNoising);

} // anonymous namespace

// Custom main instead of BENCHMARK_MAIN(): the repo-wide `--json
// [PATH]` bench flag maps onto google-benchmark's JSON reporter so CI
// collects BENCH_micro.json next to the other BENCH_*.json artifacts.
int
main(int argc, char **argv)
{
    std::string json_path;
    std::vector<char *> args;
    for (int i = 0; i < argc; ++i) {
        std::string a = argv[i];
        if (i > 0 && a == "--json") {
            // Optional path operand, matching the other benches.
            if (i + 1 < argc && argv[i + 1][0] != '-')
                json_path = argv[++i];
            else
                json_path = "BENCH_micro.json";
            continue;
        }
        args.push_back(argv[i]);
    }
    std::string out_flag, fmt_flag;
    if (!json_path.empty()) {
        out_flag = "--benchmark_out=" + json_path;
        fmt_flag = "--benchmark_out_format=json";
        args.push_back(out_flag.data());
        args.push_back(fmt_flag.data());
    }
    int count = static_cast<int>(args.size());
    benchmark::Initialize(&count, args.data());
    if (benchmark::ReportUnrecognizedArguments(count, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
