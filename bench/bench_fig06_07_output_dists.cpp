/**
 * @file
 * Reproduces Figs. 6 and 7: the noised-output distributions of the
 * resampling and thresholding mechanisms for inputs at both range
 * endpoints, showing (6) the shared truncated support under
 * resampling and (7) the boundary probability spikes under
 * thresholding.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/histogram.h"
#include "core/resampling_mechanism.h"
#include "core/threshold_calc.h"
#include "core/thresholding_mechanism.h"

namespace {

using namespace ulpdp;

void
plotMechanism(Mechanism &mech, const std::string &title, double lo,
              double hi)
{
    std::printf("\n%s\n", title.c_str());
    for (double x : {0.0, 10.0}) {
        Histogram hist(lo, hi, 25);
        for (int i = 0; i < 60000; ++i)
            hist.add(mech.noise(x).value);
        std::printf("\n  input x = %.0f  (underflow %llu, overflow "
                    "%llu)\n%s",
                    x,
                    static_cast<unsigned long long>(hist.underflow()),
                    static_cast<unsigned long long>(hist.overflow()),
                    hist.toAscii(48).c_str());
    }
}

} // anonymous namespace

int
main()
{
    bench::banner("Figs. 6 & 7: noised output distributions with "
                  "resampling / thresholding",
                  "Sensor range [0, 10], eps = 0.5, loss bound "
                  "2*eps, exact thresholds.");

    FxpMechanismParams p;
    p.range = SensorRange(0.0, 10.0);
    p.epsilon = 0.5;
    p.uniform_bits = 17;
    p.output_bits = 12;
    p.delta = 10.0 / 32.0;

    ThresholdCalculator calc(p);
    int64_t t_resamp = calc.exactIndex(RangeControl::Resampling, 2.0);
    int64_t t_thresh = calc.exactIndex(RangeControl::Thresholding, 2.0);
    double ext_r = static_cast<double>(t_resamp) * p.delta;
    double ext_t = static_cast<double>(t_thresh) * p.delta;
    std::printf("resampling threshold n_th1 = %lld bins (%.1f)\n",
                static_cast<long long>(t_resamp), ext_r);
    std::printf("thresholding threshold n_th2 = %lld bins (%.1f)\n",
                static_cast<long long>(t_thresh), ext_t);

    ResamplingMechanism resamp(p, t_resamp);
    plotMechanism(resamp,
                  "Fig. 6 -- resampling: outputs of every input share "
                  "the window [m - n_th1, M + n_th1]",
                  -ext_r - 1.0, 10.0 + ext_r + 1.0);
    std::printf("\n  average samples per report: %.3f\n",
                resamp.averageSamplesPerReport());

    ThresholdingMechanism thresh(p, t_thresh);
    plotMechanism(thresh,
                  "Fig. 7 -- thresholding: out-of-window mass piles "
                  "up at the two boundaries",
                  -ext_t - 1.0, 10.0 + ext_t + 1.0);
    std::printf("\n  clamped reports: %llu of %llu\n",
                static_cast<unsigned long long>(
                    thresh.clampedReports()),
                static_cast<unsigned long long>(
                    thresh.totalReports()));

    std::printf("\nExpected shape (paper Figs. 6/7): identical "
                "support for both inputs under both mechanisms; "
                "visible spikes at the window edges only for "
                "thresholding.\n");
    return 0;
}
