/**
 * @file
 * Reproduces Table I: the dataset inventory. Prints each synthetic
 * substitute's entry count, declared range, observed min/max, mean
 * and standard deviation so they can be compared against the
 * published UCI statistics.
 */

#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "data/generators.h"

int
main()
{
    using namespace ulpdp;
    bench::banner("Table I: datasets used for utility comparisons",
                  "Synthetic substitutes matched to the published "
                  "UCI statistics (see DESIGN.md).");

    TextTable table;
    table.setHeader({"Dataset", "Entries", "Declared range",
                     "Obs. min/max", "Mean", "StdDev",
                     "Description"});
    for (const Dataset &d : makeAllTableOneDatasets()) {
        table.addRow({
            d.name,
            std::to_string(d.size()),
            "[" + TextTable::fmt(d.range.lo, 1) + ", " +
                TextTable::fmt(d.range.hi, 1) + "]",
            TextTable::fmt(d.observedMin(), 1) + " / " +
                TextTable::fmt(d.observedMax(), 1),
            TextTable::fmt(d.mean(), 2),
            TextTable::fmt(d.stddev(), 2),
            d.description,
        });
    }
    table.print(std::cout);
    return 0;
}
