/**
 * @file
 * Reproduces Fig. 15: mean-query MAE versus the number of data
 * entries for the four settings.
 *
 *  (a) With enough RNG resolution all four settings track the ideal
 *      1/sqrt(N) decay toward zero error.
 *  (b) With a coarse RNG the thresholds become tiny; the resulting
 *      clamped/truncated noise is biased and the MAE flattens at a
 *      floor no amount of data removes.
 *
 * Runs on the parallel fleet engine: each (entries, setting) cell is a
 * cohort whose nodes hold the dataset entries; trial t is every node's
 * t-th report, and the fleet's per-trial mean estimates give the MAE
 * directly. The merged numbers are bit-identical for every thread
 * count.
 */

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "core/threshold_calc.h"
#include "data/generators.h"
#include "fleet/fleet.h"

namespace {

using namespace ulpdp;

void
runPanel(const char *title, int uniform_bits, double loss_multiple,
         bench::JsonWriter &json)
{
    std::printf("\n%s (Bu = %d, loss bound %.1f*eps)\n\n", title,
                uniform_bits, loss_multiple);

    SensorRange range(0.0, 10.0);
    const double eps = 0.5;

    TextTable table;
    table.setHeader({"entries", "Ideal", "FxP baseline", "Resampling",
                     "Thresholding"});

    json.beginObject();
    json.field("panel", title);
    json.field("uniform_bits", uniform_bits);
    json.field("loss_multiple", loss_multiple);
    json.beginArray("points");

    for (size_t n : {100u, 300u, 1000u, 3000u, 10000u, 30000u}) {
        // Gaussian-like data off the range center: the tiny windows
        // of panel (b) clamp its noise asymmetrically, which is what
        // produces the error floor.
        auto values = gen::clippedGaussian(n, 6.5, 1.5, 0.0, 10.0,
                                           900 + n);

        FxpMechanismParams p;
        p.range = range;
        p.epsilon = eps;
        p.uniform_bits = uniform_bits;
        p.output_bits = 14;
        p.delta = 10.0 / 32.0;

        ThresholdCalculator calc(p);
        int64_t t_r =
            calc.exactIndex(RangeControl::Resampling, loss_multiple);
        int64_t t_t =
            calc.exactIndex(RangeControl::Thresholding, loss_multiple);
        if (t_r < 0 || t_t < 0) {
            std::printf("  (no valid threshold at Bu = %d)\n",
                        uniform_bits);
            json.endArray();
            json.endObject();
            return;
        }

        int trials = n >= 10000 ? 20 : 60;

        FleetConfig fc;
        fc.master_seed = 900 + n;
        auto makeCohort = [&](const char *name, CohortMechanism m) {
            CohortConfig c;
            c.name = name;
            c.mechanism = m;
            c.params = p;
            c.loss_multiple = loss_multiple;
            c.values = values;
            c.reports_per_node = static_cast<uint32_t>(trials);
            // The loss verdict is constant across entry counts; skip
            // the whole-support analysis per cell.
            c.analyze_loss = false;
            return c;
        };
        fc.cohorts = {
            makeCohort("Ideal", CohortMechanism::Ideal),
            makeCohort("FxP baseline", CohortMechanism::Naive),
            makeCohort("Resampling", CohortMechanism::Resampling),
            makeCohort("Thresholding", CohortMechanism::Thresholding),
        };
        FleetRunner runner(std::move(fc));
        FleetReport rep = runner.run();

        table.addRow({
            std::to_string(n),
            TextTable::fmt(rep.cohorts[0].mean_mae, 4),
            TextTable::fmt(rep.cohorts[1].mean_mae, 4),
            TextTable::fmt(rep.cohorts[2].mean_mae, 4),
            TextTable::fmt(rep.cohorts[3].mean_mae, 4),
        });
        json.beginObject();
        json.field("entries", static_cast<uint64_t>(n));
        json.field("trials", trials);
        for (const CohortResult &c : rep.cohorts)
            json.field(c.name, c.mean_mae);
        json.endObject();
    }
    json.endArray();
    json.endObject();
    table.print(std::cout);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string json_path = bench::jsonPathFromArgs(argc, argv);

    bench::banner("Fig. 15: mean-query MAE vs number of entries",
                  "Sensor range [0, 10], eps = 0.5, data ~ clipped "
                  "N(6.5, 1.5) (off-center, so clamp bias shows).");

    bench::JsonWriter json;
    json.beginObject();
    json.field("bench", "Fig. 15");
    json.beginArray("panels");
    runPanel("(a) sufficient RNG resolution", 17, 2.0, json);
    runPanel("(b) low RNG resolution", 9, 1.5, json);
    json.endArray();
    json.endObject();

    std::printf("\nExpected shape (paper Fig. 15): panel (a) all "
                "settings decay toward zero together; panel (b) the "
                "range-controlled settings flatten at an error floor "
                "because the tiny thresholds distort the noise, while "
                "the (non-private) baseline keeps improving.\n");

    if (!json_path.empty() && json.writeFile(json_path))
        std::printf("JSON written to %s\n", json_path.c_str());
    return 0;
}
