/**
 * @file
 * Reproduces Fig. 15: mean-query MAE versus the number of data
 * entries for the four settings.
 *
 *  (a) With enough RNG resolution all four settings track the ideal
 *      1/sqrt(N) decay toward zero error.
 *  (b) With a coarse RNG the thresholds become tiny; the resulting
 *      clamped/truncated noise is biased and the MAE flattens at a
 *      floor no amount of data removes.
 */

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "core/ideal_laplace_mechanism.h"
#include "core/fxp_mechanism.h"
#include "core/resampling_mechanism.h"
#include "core/thresholding_mechanism.h"
#include "data/generators.h"
#include "query/utility.h"

namespace {

using namespace ulpdp;

void
runPanel(const char *title, int uniform_bits, double loss_multiple)
{
    std::printf("\n%s (Bu = %d, loss bound %.1f*eps)\n\n", title,
                uniform_bits, loss_multiple);

    SensorRange range(0.0, 10.0);
    const double eps = 0.5;

    TextTable table;
    table.setHeader({"entries", "Ideal", "FxP baseline", "Resampling",
                     "Thresholding"});

    for (size_t n : {100u, 300u, 1000u, 3000u, 10000u, 30000u}) {
        // Gaussian-like data off the range center: the tiny windows
        // of panel (b) clamp its noise asymmetrically, which is what
        // produces the error floor.
        auto values = gen::clippedGaussian(n, 6.5, 1.5, 0.0, 10.0,
                                           900 + n);

        FxpMechanismParams p;
        p.range = range;
        p.epsilon = eps;
        p.uniform_bits = uniform_bits;
        p.output_bits = 14;
        p.delta = 10.0 / 32.0;

        ThresholdCalculator calc(p);
        int64_t t_r =
            calc.exactIndex(RangeControl::Resampling, loss_multiple);
        int64_t t_t =
            calc.exactIndex(RangeControl::Thresholding, loss_multiple);
        if (t_r < 0 || t_t < 0) {
            std::printf("  (no valid threshold at Bu = %d)\n",
                        uniform_bits);
            return;
        }

        IdealLaplaceMechanism ideal(range, eps, 3);
        NaiveFxpMechanism naive(p);
        ResamplingMechanism resamp(p, t_r);
        ThresholdingMechanism thresh(p, t_t);

        int trials = n >= 10000 ? 20 : 60;
        UtilityEvaluator eval(trials);
        MeanQuery q;
        table.addRow({
            std::to_string(n),
            TextTable::fmt(eval.evaluate(values, ideal, q).mae, 4),
            TextTable::fmt(eval.evaluate(values, naive, q).mae, 4),
            TextTable::fmt(eval.evaluate(values, resamp, q).mae, 4),
            TextTable::fmt(eval.evaluate(values, thresh, q).mae, 4),
        });
    }
    table.print(std::cout);
}

} // anonymous namespace

int
main()
{
    bench::banner("Fig. 15: mean-query MAE vs number of entries",
                  "Sensor range [0, 10], eps = 0.5, data ~ clipped "
                  "N(6.5, 1.5) (off-center, so clamp bias shows).");

    runPanel("(a) sufficient RNG resolution", 17, 2.0);
    runPanel("(b) low RNG resolution", 9, 1.5);

    std::printf("\nExpected shape (paper Fig. 15): panel (a) all "
                "settings decay toward zero together; panel (b) the "
                "range-controlled settings flatten at an error floor "
                "because the tiny thresholds distort the noise, while "
                "the (non-private) baseline keeps improving.\n");
    return 0;
}
