/**
 * @file
 * Reproduces Fig. 8: normalized privacy loss as a function of the
 * noised output value, with the segment thresholds the budget
 * controller charges against (loss levels 1.5 eps, 2.0 eps, ...).
 */

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "core/budget.h"
#include "core/output_model.h"
#include "core/privacy_loss.h"

int
main()
{
    using namespace ulpdp;
    bench::banner("Fig. 8: privacy-loss segments vs noised output",
                  "Thresholding device, sensor range [0, 10], "
                  "eps = 0.5, Bu = 17, Delta = 10/2^5.");

    FxpMechanismParams p;
    p.range = SensorRange(0.0, 10.0);
    p.epsilon = 0.5;
    p.uniform_bits = 17;
    p.output_bits = 12;
    p.delta = 10.0 / 32.0;

    ThresholdCalculator calc(p);
    std::vector<double> levels{1.2, 1.5, 2.0, 2.5, 3.0};
    auto segments = LossSegments::compute(
        calc, RangeControl::Thresholding, levels);

    std::printf("\nSegment table (the dashed lines of Fig. 8):\n\n");
    TextTable seg_table;
    seg_table.setHeader({"segment", "output extension beyond [m, M]",
                         "charged loss", "loss / eps"});
    for (size_t i = 0; i < segments.size(); ++i) {
        double ext = static_cast<double>(
                         segments[i].threshold_index) * p.delta;
        seg_table.addRow({
            i == 0 ? "central (eps_RNG)" : "segment " +
                                               std::to_string(i),
            "M + " + TextTable::fmt(ext, 2),
            TextTable::fmt(segments[i].loss, 4),
            TextTable::fmt(segments[i].loss / p.epsilon, 3),
        });
    }
    seg_table.print(std::cout);

    // The loss curve itself, on the upper half (the distribution is
    // symmetric, like the paper's Fig. 8 which only plots y > M).
    int64_t outer = segments.back().threshold_index;
    ThresholdingOutputModel model(calc.pmf(), calc.span(), outer);

    std::printf("\nNormalized loss vs output (upper half):\n\n");
    TextTable curve;
    curve.setHeader({"output value", "loss / eps"});
    for (int64_t j = calc.span(); j <= calc.span() + outer;
         j += std::max<int64_t>(outer / 24, 1)) {
        double loss = PrivacyLossAnalyzer::lossAtOutput(model, j);
        curve.addRow({
            TextTable::fmt(static_cast<double>(j) * p.delta, 2),
            std::isfinite(loss)
                ? TextTable::fmt(loss / p.epsilon, 3)
                : "inf",
        });
    }
    curve.print(std::cout);

    std::printf("\nExpected shape (paper Fig. 8): a staircase of "
                "increasing normalized loss, crossing each level at "
                "the corresponding dashed threshold.\n");
    return 0;
}
