/**
 * @file
 * Extension (Section III-A4 made executable): the infinite-loss
 * failure and the window fixes for *other* DP noise distributions.
 * Runs Gaussian and staircase noise through the same fixed-point
 * inversion pipeline, enumerates the exact device PMFs, shows that
 * the naive mechanism is never LDP for any of them, and compares
 * utility of the fixed mechanisms at matched privacy.
 */

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/output_model.h"
#include "core/privacy_loss.h"
#include "rng/fxp_inversion.h"

namespace {

using namespace ulpdp;

int64_t
searchThreshold(const std::shared_ptr<const NoisePmf> &pmf,
                int64_t span, double bound)
{
    auto ok = [&](int64_t t) {
        ResamplingOutputModel model(pmf, span, t);
        return PrivacyLossAnalyzer::analyze(model).worst_case_loss <=
               bound * (1.0 + 1e-9);
    };
    int64_t lo = -1;
    for (int64_t t = 0; t <= pmf->maxIndex();
         t = t == 0 ? 1 : t * 2) {
        if (ok(t))
            lo = t;
        else
            break;
    }
    if (lo < 0)
        return -1;
    int64_t hi = std::min(lo * 2 + 1, pmf->maxIndex());
    while (hi - lo > 1) {
        int64_t mid = lo + (hi - lo) / 2;
        if (ok(mid))
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

} // anonymous namespace

int
main()
{
    bench::banner("Extension: other noise distributions on the FxP "
                  "pipeline (Section III-A4)",
                  "Sensor range [0, 10], Bu = 16, Delta = d/32; "
                  "exact enumerated device PMFs.");

    const double eps = 0.5;
    const double d = 10.0;
    FxpInversionConfig cfg;
    cfg.uniform_bits = 16;
    cfg.output_bits = 14;
    cfg.delta = d / 32.0;
    int64_t span = 32;

    // Matched privacy intent: Laplace lambda = d/eps is exactly
    // eps-DP; the Gaussian sigma is set to the same standard
    // deviation (Gaussian gives (eps, delta)-DP only -- listed for
    // the mechanism-level comparison the paper gestures at);
    // staircase with optimal gamma is exactly eps-DP.
    double lambda = d / eps;
    double sigma = lambda * std::sqrt(2.0);
    double gamma = StaircaseMagnitude::optimalGamma(eps);

    struct Entry
    {
        std::string name;
        std::shared_ptr<const MagnitudeIcdf> icdf;
    };
    std::vector<Entry> entries{
        {"Laplace(d/eps)",
         std::make_shared<LaplaceMagnitude>(lambda)},
        {"Gaussian (matched std)",
         std::make_shared<GaussianMagnitude>(sigma)},
        {"Staircase (optimal gamma)",
         std::make_shared<StaircaseMagnitude>(d, eps, gamma)},
    };

    TextTable table;
    table.setHeader({"Noise", "support bins", "first gap",
                     "naive loss", "resamp T (2*eps)",
                     "loss at T", "E|noise| in window"});

    for (const auto &e : entries) {
        auto pmf = std::make_shared<EnumeratedNoisePmf>(cfg, e.icdf);
        NaiveOutputModel naive(pmf, span);
        LossReport naive_rep = PrivacyLossAnalyzer::analyze(naive);

        int64_t t = searchThreshold(pmf, span, 2.0 * eps);
        std::string loss_str = "-";
        std::string mag_str = "-";
        if (t >= 0) {
            ResamplingOutputModel fixed(pmf, span, t);
            loss_str = TextTable::fmt(
                PrivacyLossAnalyzer::analyze(fixed).worst_case_loss,
                4);
            // Expected |noise| under the windowed distribution for a
            // centered input (utility proxy: smaller is better).
            int64_t i = span / 2;
            double mag = 0.0;
            for (int64_t j = fixed.outputLo(); j <= fixed.outputHi();
                 ++j) {
                mag += std::abs(static_cast<double>(j - i)) *
                       cfg.delta * fixed.prob(j, i);
            }
            mag_str = TextTable::fmt(mag, 2);
        }
        table.addRow({
            e.name,
            std::to_string(pmf->maxIndex()),
            std::to_string(pmf->firstInteriorGap()),
            naive_rep.bounded ? "bounded (?)" : "inf",
            t >= 0 ? std::to_string(t) : "none",
            loss_str,
            mag_str,
        });
    }
    table.print(std::cout);

    std::printf("\nReading: every distribution shows bounded support "
                "and tail gaps on fixed-point hardware -- the naive "
                "mechanism is never LDP (Section III-A4's "
                "generalization) -- and the same window control "
                "restores a provable bound for all of them. The "
                "staircase's expected in-window noise magnitude is "
                "the smallest: it is the utility-optimal eps-DP "
                "noise.\n");
    return 0;
}
