/**
 * @file
 * Shared helpers for the paper-reproduction bench binaries: standard
 * parameter construction, the four evaluation settings of Tables
 * II-V, and consistent banner printing.
 */

#ifndef ULPDP_BENCH_BENCH_UTIL_H
#define ULPDP_BENCH_BENCH_UTIL_H

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/fxp_params.h"
#include "core/threshold_calc.h"
#include "data/dataset.h"
#include "query/utility.h"

namespace ulpdp {
namespace bench {

/**
 * Minimal streaming JSON writer for the machine-readable BENCH_*.json
 * side-channel every bench shares (the human-readable tables stay on
 * stdout). Call begin/end in matched pairs; commas and separators are
 * inserted automatically. Doubles print with 17 significant digits so
 * bit-exactness claims survive the round trip; NaN and infinities --
 * which JSON cannot carry -- serialise as null.
 */
class JsonWriter
{
  public:
    void beginObject();
    void beginObject(const std::string &key);
    void endObject();
    void beginArray();
    void beginArray(const std::string &key);
    void endArray();

    void field(const std::string &key, double v);
    void field(const std::string &key, uint64_t v);
    void field(const std::string &key, int64_t v);
    void field(const std::string &key, int v);
    void field(const std::string &key, unsigned v);
    void field(const std::string &key, bool v);
    void field(const std::string &key, const std::string &v);
    void field(const std::string &key, const char *v);

    /** Bare array element. */
    void element(double v);
    void element(const std::string &v);

    /** The document so far. */
    std::string str() const { return out_.str(); }

    /** Write the document to @p path; warns and returns false on I/O
     *  failure (a bench should still print its table). */
    bool writeFile(const std::string &path) const;

  private:
    void comma();
    void keyPrefix(const std::string &key);
    void raw(const std::string &s);
    static std::string escape(const std::string &s);
    static std::string number(double v);

    std::ostringstream out_;
    std::vector<bool> has_items_;
};

/**
 * The shared `--json <path>` bench flag: returns the path argument or
 * an empty string when the flag is absent. Fatal when the flag is
 * given without a path.
 */
std::string jsonPathFromArgs(int argc, char **argv);

/** Print a bench banner naming the table/figure being reproduced. */
void banner(const std::string &title, const std::string &what);

/**
 * Standard fixed-point parameters for a dataset: the paper's Bu = 17
 * URNG, a Delta of d/32, and 14 output bits (enough to never saturate
 * before the L = lambda Bu ln 2 support edge for eps >= 0.25).
 */
FxpMechanismParams standardParams(const Dataset &data, double epsilon,
                                  uint64_t seed = 1);

/** One row of a Tables II-V style comparison. */
struct SettingRow
{
    /** Setting name ("Ideal Local DP", "FxP HW Baseline", ...). */
    std::string setting;

    /** Utility result for the query under evaluation. */
    UtilityResult util;

    /** Exact-analysis verdict: is the setting eps'-LDP for the
     *  configured bound (n * eps)? */
    bool ldp = false;

    /** Worst-case exact privacy loss (inf for the naive baseline). */
    double worst_loss = 0.0;
};

/**
 * Run the paper's four settings (ideal / naive FxP / resampling /
 * thresholding) for one dataset and query: methodology of Section V
 * with the loss bound n * eps, thresholds from the exact search.
 *
 * Implemented on the parallel fleet engine: the four settings run as
 * four cohorts of one fleet (dataset entry i = node i, trial t = every
 * node's t-th report), so the trial loop parallelises across cores
 * while staying bit-identical for every thread count.
 *
 * @param data Dataset (already subsampled if huge).
 * @param query Query under evaluation.
 * @param epsilon Privacy parameter (paper: 0.5).
 * @param loss_multiple Loss bound multiple n (paper segments use
 *        1.5-3; the tables use a device configured at n = 2).
 * @param trials Trials per setting.
 */
std::vector<SettingRow> runFourSettings(const Dataset &data,
                                        const Query &query,
                                        double epsilon,
                                        double loss_multiple,
                                        int trials, uint64_t seed = 1);

/**
 * The Table I datasets subsampled to a tractable size for the
 * utility benches (the paper runs 500 trials x all entries on a
 * server farm; we cap entries and trials and note it in the output).
 */
std::vector<Dataset> benchDatasets(size_t max_entries);

} // namespace bench
} // namespace ulpdp

#endif // ULPDP_BENCH_BENCH_UTIL_H
