/**
 * @file
 * Shared helpers for the paper-reproduction bench binaries: standard
 * parameter construction, the four evaluation settings of Tables
 * II-V, and consistent banner printing.
 */

#ifndef ULPDP_BENCH_BENCH_UTIL_H
#define ULPDP_BENCH_BENCH_UTIL_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "core/fxp_params.h"
#include "core/threshold_calc.h"
#include "data/dataset.h"
#include "query/utility.h"

namespace ulpdp {
namespace bench {

// The streaming JSON writer behind the machine-readable BENCH_*.json
// side-channel now lives in common/json.h (ulpdp::JsonWriter) so the
// telemetry exporters share it; the alias keeps bench::JsonWriter
// spelling working.
using JsonWriter = ulpdp::JsonWriter;

/**
 * The shared `--json <path>` bench flag: returns the path argument or
 * an empty string when the flag is absent. Fatal when the flag is
 * given without a path.
 */
std::string jsonPathFromArgs(int argc, char **argv);

/** Print a bench banner naming the table/figure being reproduced. */
void banner(const std::string &title, const std::string &what);

/**
 * Standard fixed-point parameters for a dataset: the paper's Bu = 17
 * URNG, a Delta of d/32, and 14 output bits (enough to never saturate
 * before the L = lambda Bu ln 2 support edge for eps >= 0.25).
 */
FxpMechanismParams standardParams(const Dataset &data, double epsilon,
                                  uint64_t seed = 1);

/** One row of a Tables II-V style comparison. */
struct SettingRow
{
    /** Setting name ("Ideal Local DP", "FxP HW Baseline", ...). */
    std::string setting;

    /** Utility result for the query under evaluation. */
    UtilityResult util;

    /** Exact-analysis verdict: is the setting eps'-LDP for the
     *  configured bound (n * eps)? */
    bool ldp = false;

    /** Worst-case exact privacy loss (inf for the naive baseline). */
    double worst_loss = 0.0;

    /**
     * Streaming-decoder MAE for the same query: each trial's sketch
     * slot counts decoded by the agg channel-inversion estimator
     * instead of evaluating the query on materialized reports. False
     * for the Ideal setting (no output grid to sketch on) and for
     * queries the decoder does not serve.
     */
    bool agg_supported = false;
    double agg_mae = 0.0;
    double agg_mae_std = 0.0;
};

/**
 * Run the paper's four settings (ideal / naive FxP / resampling /
 * thresholding) for one dataset and query -- methodology of Section V
 * with the loss bound n * eps, thresholds from the exact search --
 * plus the two registry mechanisms that postdate the paper
 * ("bounded-laplace", "discrete-laplace"), selected by name through
 * the mechanism registry so the tables triple as a registry
 * integration test: six rows per dataset.
 *
 * Implemented on the parallel fleet engine: the four settings run as
 * four cohorts of one fleet (dataset entry i = node i, trial t = every
 * node's t-th report), so the trial loop parallelises across cores
 * while staying bit-identical for every thread count.
 *
 * @param data Dataset (already subsampled if huge).
 * @param query Query under evaluation.
 * @param epsilon Privacy parameter (paper: 0.5).
 * @param loss_multiple Loss bound multiple n (paper segments use
 *        1.5-3; the tables use a device configured at n = 2).
 * @param trials Trials per setting.
 */
std::vector<SettingRow> runFourSettings(const Dataset &data,
                                        const Query &query,
                                        double epsilon,
                                        double loss_multiple,
                                        int trials, uint64_t seed = 1);

/**
 * The Table I datasets subsampled to a tractable size for the
 * utility benches (the paper runs 500 trials x all entries on a
 * server farm; we cap entries and trials and note it in the output).
 */
std::vector<Dataset> benchDatasets(size_t max_entries);

} // namespace bench
} // namespace ulpdp

#endif // ULPDP_BENCH_BENCH_UTIL_H
