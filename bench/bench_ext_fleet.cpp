/**
 * @file
 * Extension: parallel fleet engine scaling.
 *
 * Sweeps worker thread counts {1, 2, 4, 8, hw_concurrency} over one
 * fleet configuration and reports throughput (reports/second), the
 * speedup against the single-thread run, and -- the part performance
 * work usually sacrifices -- whether the merged FleetReport stayed
 * bit-identical across every thread count and across two same-seed
 * runs. A determinism mismatch is a hard failure (nonzero exit), not
 * a table footnote.
 *
 * A second section drives the same workload through the cycle-level
 * DpBox device model on a small node sample to put the fleet engine's
 * throughput in context: the cycle-accurate model answers
 * microarchitecture questions, the fleet engine answers population
 * questions, and the gap between their rates is why both exist.
 *
 * A third section measures the telemetry tax: the same fleet epoch
 * with the global metric registry enabled, against the metrics-off
 * sweep above. The acceptance budget is <= 5% throughput overhead and
 * a bit-identical fingerprint (telemetry witnesses the run, it never
 * feeds back into it).
 *
 * Measurement protocol (the PR 5 baseline was a single unwarmed
 * sample per sweep point, which recorded thread-pool spawn cost as
 * "scaling" and a *negative* telemetry overhead):
 *
 *  - every sweep point runs one untimed warmup epoch first (parks the
 *    worker pool at the right width, touches every slab) and then
 *    reports best-of-N over N >= 1 measured epochs (--repeats,
 *    default 3) -- steady-state throughput, not cold-start;
 *  - the telemetry comparison interleaves off/on epoch pairs and
 *    compares medians, so drift hits both sides equally; a negative
 *    overhead reading is a noise-floor artifact and is clamped to 0
 *    in the headline number (the raw value and a below-noise flag are
 *    still emitted);
 *  - every epoch of every mode still must reproduce the sweep's
 *    fingerprint bit for bit.
 *
 * Flags:
 *   --nodes N     nodes per cohort        (default 200000)
 *   --reports R   reports per node        (default 8)
 *   --repeats N   measured epochs per sweep point, best-of (default 3)
 *   --json PATH   JSON output path        (default BENCH_fleet.json)
 *   --prom PATH   Prometheus exposition   (default BENCH_fleet.prom)
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "dpbox/driver.h"
#include "fleet/fleet.h"
#include "rng/taus_bank.h"
#include "telemetry/export.h"
#include "telemetry/telemetry.h"

namespace {

using namespace ulpdp;

uint64_t
flagValue(int argc, char **argv, const char *flag, uint64_t fallback)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::string(argv[i]) == flag)
            return std::strtoull(argv[i + 1], nullptr, 10);
    }
    return fallback;
}

std::string
flagString(int argc, char **argv, const char *flag,
           const char *fallback)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::string(argv[i]) == flag)
            return argv[i + 1];
    }
    return fallback;
}

FleetConfig
makeConfig(uint64_t nodes, uint32_t reports)
{
    // The paper's reference device: range [0, 10], eps = 0.5, Bu = 17,
    // Delta = d/32, loss bound 2*eps. Two range-controlled cohorts
    // exercise both hot paths (batched clamp and truncated inversion),
    // with per-node budgets tight enough that some reports replay.
    FxpMechanismParams p;
    p.range = SensorRange(0.0, 10.0);
    p.epsilon = 0.5;
    p.uniform_bits = 17;
    p.output_bits = 14;
    p.delta = 10.0 / 32.0;

    FleetConfig fc;
    fc.master_seed = 42;
    auto makeCohort = [&](const char *name, CohortMechanism m) {
        CohortConfig c;
        c.name = name;
        c.mechanism = m;
        c.params = p;
        c.loss_multiple = 2.0;
        c.nodes = nodes;
        c.reports_per_node = reports;
        c.budget_per_node = 6.0; // covers 6 fresh reports at 2*eps
        c.analyze_loss = false;  // throughput run
        return c;
    };
    fc.cohorts = {
        makeCohort("thresholding", CohortMechanism::Thresholding),
        makeCohort("resampling", CohortMechanism::Resampling),
    };
    return fc;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    uint64_t nodes = flagValue(argc, argv, "--nodes", 200000);
    uint32_t reports = static_cast<uint32_t>(
        flagValue(argc, argv, "--reports", 8));
    uint32_t repeats = static_cast<uint32_t>(std::max<uint64_t>(
        1, flagValue(argc, argv, "--repeats", 3)));
    std::string json_path = bench::jsonPathFromArgs(argc, argv);
    if (json_path.empty())
        json_path = "BENCH_fleet.json";
    std::string prom_path =
        flagString(argc, argv, "--prom", "BENCH_fleet.prom");

    bench::banner(
        "Extension: parallel fleet engine scaling",
        "Thresholding + resampling cohorts, sharded RNG streams, "
        "lock-free block aggregation;\ndeterminism = merged report "
        "bit-identical across thread counts and same-seed runs.");

    unsigned hw = FleetRunner::hardwareThreads();
    std::vector<unsigned> sweep = {1, 2, 4, 8, hw};
    std::sort(sweep.begin(), sweep.end());
    sweep.erase(std::unique(sweep.begin(), sweep.end()), sweep.end());

    std::printf("\nfleet: 2 cohorts x %llu nodes x %u reports "
                "(%llu reports total), batch layer: %zu-lane %s "
                "kernel, hardware threads: %u\n"
                "protocol: 1 warmup epoch + best-of-%u measured "
                "epochs per thread count\n\n",
                static_cast<unsigned long long>(nodes), reports,
                static_cast<unsigned long long>(2 * nodes * reports),
                TausBank::kMaxLanes, TausBank::kernelName(),
                hw, repeats);

    FleetRunner runner(makeConfig(nodes, reports));

    TextTable table;
    table.setHeader({"threads", "seconds", "reports/sec", "speedup",
                     "fingerprint"});

    std::vector<double> rates;
    std::vector<uint64_t> fingerprints;
    bool deterministic = true;
    for (unsigned t : sweep) {
        // Untimed warmup: parks the persistent pool at this width,
        // faults in every slab, and fixes the fingerprint the
        // measured epochs must reproduce.
        FleetReport warm = runner.run(t);
        uint64_t fp = warm.fingerprint();
        double best_seconds = warm.seconds;
        double best_rate = warm.reportsPerSecond();
        for (uint32_t r = 0; r < repeats; ++r) {
            FleetReport rep = runner.run(t);
            deterministic =
                deterministic && rep.fingerprint() == fp;
            if (rep.seconds < best_seconds) {
                best_seconds = rep.seconds;
                best_rate = rep.reportsPerSecond();
            }
        }
        rates.push_back(best_rate);
        fingerprints.push_back(fp);
        char sec[32], rate[32], speed[32], fpbuf[32];
        std::snprintf(sec, sizeof sec, "%.3f", best_seconds);
        std::snprintf(rate, sizeof rate, "%.3g", best_rate);
        std::snprintf(speed, sizeof speed, "%.2fx",
                      rates.front() > 0.0
                          ? best_rate / rates.front()
                          : 0.0);
        std::snprintf(fpbuf, sizeof fpbuf, "%016llx",
                      static_cast<unsigned long long>(fp));
        table.addRow({std::to_string(t), sec, rate, speed, fpbuf});
    }
    table.print(std::cout);

    // Same-seed repeatability: a second run at the largest count.
    FleetReport rerun = runner.run(sweep.back());
    for (uint64_t fp : fingerprints)
        deterministic = deterministic && fp == fingerprints.front();
    deterministic =
        deterministic && rerun.fingerprint() == fingerprints.front();

    double hw_speedup =
        rates.front() > 0.0 ? rates.back() / rates.front() : 0.0;
    std::printf("\nbit-exact determinism across thread counts and "
                "same-seed reruns: %s\n",
                deterministic ? "PASS" : "FAIL");
    std::printf("speedup at %u threads vs 1 thread: %.2fx "
                "(target >= 4x on a >= 8-core host; this host has "
                "%u)\n",
                sweep.back(), hw_speedup, hw);

    // --- telemetry overhead -----------------------------------------
    // Same epoch, same thread count, with the global metric registry
    // enabled. Budget: <= 5% throughput overhead, and the fingerprint
    // must not move (telemetry observes the run; it must never
    // participate in it).
    //
    // Protocol: off/on epochs are *interleaved* and compared by
    // median, so clock drift and scheduler noise land on both sides
    // of the subtraction. The PR 5 single-shot comparison (one off
    // run, then one on run) could and did measure telemetry as
    // *faster* -- a -2.89% "overhead" landed in the committed
    // baseline. If the median still comes out negative, the true
    // overhead is below the host's noise floor: the headline number
    // is clamped to 0 and the reading flagged.
    telemetry::reset();
    telemetry::setEnabled(true);
    FleetReport warm_on = runner.run(sweep.back()); // instrumented warmup
    telemetry::setEnabled(false);
    bool telemetry_deterministic =
        warm_on.fingerprint() == fingerprints.front();
    std::vector<double> rates_off, rates_on;
    for (uint32_t r = 0; r < repeats; ++r) {
        FleetReport off = runner.run(sweep.back());
        telemetry::setEnabled(true);
        FleetReport on = runner.run(sweep.back());
        telemetry::setEnabled(false);
        rates_off.push_back(off.reportsPerSecond());
        rates_on.push_back(on.reportsPerSecond());
        telemetry_deterministic = telemetry_deterministic &&
            off.fingerprint() == fingerprints.front() &&
            on.fingerprint() == fingerprints.front();
    }
    auto median = [](std::vector<double> v) {
        std::sort(v.begin(), v.end());
        size_t n = v.size();
        return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
    };
    double rate_off = median(rates_off);
    double rate_on = median(rates_on);
    double overhead_raw_pct = rate_off > 0.0
        ? (rate_off - rate_on) / rate_off * 100.0
        : 0.0;
    bool overhead_below_noise = overhead_raw_pct < 0.0;
    double overhead_pct = std::max(0.0, overhead_raw_pct);
    std::printf("\ntelemetry overhead at %u threads (median of %u "
                "interleaved off/on pairs): %.3g -> %.3g reports/sec "
                "(%+.2f%%%s, budget <= 5%%)\n",
                sweep.back(), repeats, rate_off, rate_on,
                overhead_pct,
                overhead_below_noise ? ", raw reading negative: "
                                       "below noise floor, clamped"
                                     : "");
    std::printf("fingerprint with telemetry enabled: %s\n",
                telemetry_deterministic ? "unchanged (PASS)"
                                        : "CHANGED (FAIL)");
    // Re-observe exactly one instrumented epoch so the exported
    // metric values below describe a single epoch, not the interleave
    // loop.
    telemetry::reset();
    telemetry::setEnabled(true);
    runner.run(sweep.back());
    telemetry::setEnabled(false);
    if (telemetry::writePrometheusFile(telemetry::registry(),
                                       prom_path))
        std::printf("Prometheus exposition written to %s (%zu series "
                    "-- textfile-collector handoff)\n",
                    prom_path.c_str(), telemetry::registry().size());

    // --- cycle-level context ----------------------------------------
    // The same device parameters through the clocked DpBox model, on
    // a small sample, with per-device stats folded through
    // DpBoxStats::operator+= the way a fleet aggregator would.
    const uint64_t kSampleNodes = 64;
    const uint32_t kSampleReports = 16;
    DpBoxStats total;
    auto c0 = std::chrono::steady_clock::now();
    for (uint64_t nid = 0; nid < kSampleNodes; ++nid) {
        DpBoxConfig cfg;
        cfg.frac_bits = 5;
        cfg.word_bits = 20;
        cfg.uniform_bits = 17;
        cfg.threshold_index = 418;
        cfg.thresholding = true;
        cfg.seed = 1000 + nid;
        DpBoxDriver drv(cfg);
        drv.initialize(1e9, 0);
        drv.configure(0.5, SensorRange(0.0, 10.0));
        for (uint32_t t = 0; t < kSampleReports; ++t)
            drv.noise(5.0);
        total += drv.device().stats();
    }
    auto c1 = std::chrono::steady_clock::now();
    double cyc_seconds =
        std::chrono::duration<double>(c1 - c0).count();
    uint64_t cyc_reports = kSampleNodes * kSampleReports;
    double cyc_rate =
        cyc_seconds > 0.0 ? cyc_reports / cyc_seconds : 0.0;
    std::printf("\ncycle-level DpBox model: %llu reports in %.3f s "
                "(%.3g reports/sec, %llu device cycles simulated)\n",
                static_cast<unsigned long long>(cyc_reports),
                cyc_seconds, cyc_rate,
                static_cast<unsigned long long>(total.cycles));
    if (cyc_rate > 0.0)
        std::printf("fleet engine vs cycle-level model: %.0fx the "
                    "report rate -- population-scale runs need the "
                    "fleet path.\n", rates.back() / cyc_rate);

    bench::JsonWriter json;
    json.beginObject();
    json.field("bench", "fleet scaling");
    json.field("nodes_per_cohort", nodes);
    json.field("reports_per_node", reports);
    json.field("cohorts", uint64_t{2});
    json.field("hardware_threads", hw);
    json.field("warmup_epochs_per_point", uint64_t{1});
    json.field("measured_epochs_per_point", uint64_t{repeats});
    json.field("simd_kernel", TausBank::kernelName());
    json.field("batch_lanes",
               static_cast<uint64_t>(TausBank::kMaxLanes));
    json.field("bit_exact_determinism", deterministic);
    json.field("speedup_max_vs_1", hw_speedup);
    json.beginArray("sweep");
    for (size_t i = 0; i < sweep.size(); ++i) {
        json.beginObject();
        json.field("threads", sweep[i]);
        json.field("reports_per_second", rates[i]);
        json.field("speedup_vs_1",
                   rates.front() > 0.0 ? rates[i] / rates.front()
                                       : 0.0);
        char fpbuf[32];
        std::snprintf(fpbuf, sizeof fpbuf, "%016llx",
                      static_cast<unsigned long long>(
                          fingerprints[i]));
        json.field("fingerprint", fpbuf);
        json.endObject();
    }
    json.endArray();
    json.field("cycle_model_reports_per_second", cyc_rate);
    json.field("cycle_model_device_cycles", total.cycles);
    json.field("telemetry_reports_per_second", rate_on);
    json.field("telemetry_overhead_pct", overhead_pct);
    json.field("telemetry_overhead_raw_pct", overhead_raw_pct);
    json.field("telemetry_overhead_below_noise",
               overhead_below_noise);
    json.field("telemetry_fingerprint_unchanged",
               telemetry_deterministic);
    telemetry::metricsToJson(telemetry::registry(), json);
    telemetry::journalToJson(telemetry::journal(), json);
    json.endObject();
    if (json.writeFile(json_path))
        std::printf("\nJSON written to %s\n", json_path.c_str());

    if (!deterministic || !telemetry_deterministic) {
        std::printf("\nFAIL: merged fleet reports differ across "
                    "thread counts or telemetry modes.\n");
        return 1;
    }
    std::printf("\nTakeaway: per-node streams are derived, not "
                "shared, and merges happen in a fixed block order, so "
                "adding cores changes the wall clock and nothing "
                "else.\n");
    return 0;
}
