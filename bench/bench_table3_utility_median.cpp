/**
 * @file
 * Reproduces Table III: mean absolute error of the median query.
 */

#include "utility_table.h"

int
main(int argc, char **argv)
{
    using namespace ulpdp;
    return bench::utilityTableMain(
        "Table III", "median",
        [](const Dataset &) {
            return std::make_unique<MedianQuery>();
        },
        argc, argv);
}
