/**
 * @file
 * Reproduces the Section V hardware discussion: the DP-Box variants'
 * area / timing / power trade-offs (constants from the paper's 65 nm
 * synthesis -- we cannot re-run Design Compiler, so the numbers are
 * quoted and the derived per-cycle energies computed), plus measured
 * cycle behaviour of the model for both range-control modes.
 */

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "dpbox/driver.h"
#include "sim/energy_model.h"

int
main()
{
    using namespace ulpdp;
    bench::banner("Section V: DP-Box implementation variants",
                  "Synthesis constants quoted from the paper (65 nm, "
                  "Synopsys DC); cycle behaviour measured on the "
                  "model.");

    TextTable synth;
    synth.setHeader({"Variant", "Gates", "Critical path",
                     "Power @ 16 MHz", "Energy / cycle"});
    EnergyModel default_variant(EnergyParams{1.25e-9, 158.3e-6,
                                             16.0e6});
    EnergyModel relaxed(EnergyParams{1.25e-9, 252.0e-6, 16.0e6});
    synth.addRow({"default", "10431", "58.66 ns", "158.3 uW",
                  TextTable::fmt(
                      default_variant.dpboxEnergyPerCycle() * 1e12,
                      2) + " pJ"});
    synth.addRow({"relaxed timing (30 ns)", "9621", "30 ns",
                  "252 uW",
                  TextTable::fmt(relaxed.dpboxEnergyPerCycle() * 1e12,
                                 2) + " pJ"});
    synth.print(std::cout);
    std::printf("\n(Budget-control logic adds ~11%% gates when "
                "enabled.)\n");

    // Measured cycle behaviour of the model.
    std::printf("\nMeasured noising latency on the cycle model "
                "(20000 noisings, range [0, 10], eps = 0.5):\n\n");
    TextTable meas;
    meas.setHeader({"Mode", "Window (bins)", "Avg cycles",
                    "Max cycles", "Resamples"});
    for (bool thresholding : {true, false}) {
        for (int64_t window : {200, 418, 800}) {
            DpBoxConfig cfg;
            cfg.frac_bits = 5;
            cfg.word_bits = 20;
            cfg.uniform_bits = 17;
            cfg.threshold_index = window;
            cfg.thresholding = thresholding;
            DpBoxDriver drv(cfg);
            drv.initialize(1e9, 0);
            drv.configure(0.5, SensorRange(0.0, 10.0));

            uint64_t total = 0;
            uint64_t worst = 0;
            const int n = 20000;
            for (int i = 0; i < n; ++i) {
                uint64_t cyc = drv.noise(5.0).latency_cycles;
                total += cyc;
                worst = std::max(worst, cyc);
            }
            meas.addRow({
                thresholding ? "thresholding" : "resampling",
                std::to_string(window),
                TextTable::fmt(static_cast<double>(total) / n, 3),
                std::to_string(worst),
                std::to_string(drv.device().stats().resamples),
            });
        }
    }
    meas.print(std::cout);

    std::printf("\nExpected shape (paper Section V): thresholding "
                "constant 2 cycles regardless of window; resampling "
                "averages under 3 cycles, worst case growing as the "
                "window shrinks.\n");
    return 0;
}
