#include "utility_table.h"

#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/table.h"

namespace ulpdp {
namespace bench {

namespace {

// Evaluation parameters. The paper uses eps = 0.5, 500 trials per
// entry and full datasets; we cap entries and trials so that all four
// tables run in seconds on a laptop -- MAE estimates converge long
// before 500 trials.
constexpr double kEpsilon = 0.5;
constexpr double kLossMultiple = 2.0;
constexpr int kTrials = 50;
constexpr size_t kMaxEntries = 4000;

} // anonymous namespace

int
utilityTableMain(
    const std::string &table_name, const std::string &query_name,
    const std::function<std::unique_ptr<Query>(const Dataset &)>
        &make_query)
{
    banner(table_name + ": mean absolute error for " + query_name +
               " query",
           "Settings: eps = 0.5, loss bound 2*eps, Bu = 17, "
           "Delta = d/32, exact thresholds;\n"
           "datasets capped at 4000 entries, 50 trials (paper: "
           "full sets, 500 trials).");

    TextTable table;
    table.setHeader({"Dataset", "Setting", "MAE", "Rel.err", "LDP?",
                     "WorstLoss", "AvgSamples"});

    for (const Dataset &data : benchDatasets(kMaxEntries)) {
        auto query = make_query(data);
        auto rows = runFourSettings(data, *query, kEpsilon,
                                    kLossMultiple, kTrials);
        for (const auto &row : rows) {
            table.addRow({
                data.name,
                row.setting,
                TextTable::fmtPlusMinus(row.util.mae,
                                        row.util.mae_std),
                TextTable::fmtPercent(
                    row.util.mae / data.range.length()),
                row.ldp ? "Y" : "N",
                std::isfinite(row.worst_loss)
                    ? TextTable::fmt(row.worst_loss)
                    : "inf",
                TextTable::fmt(row.util.avgSamplesPerReport(), 3),
            });
        }
    }
    table.print(std::cout);
    std::printf(
        "\nExpected shape (paper %s): all four settings show similar "
        "MAE on every dataset;\nonly the FxP HW Baseline has LDP? = N "
        "(infinite worst-case loss).\n",
        table_name.c_str());
    return 0;
}

} // namespace bench
} // namespace ulpdp
