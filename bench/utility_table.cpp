#include "utility_table.h"

#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/table.h"

namespace ulpdp {
namespace bench {

namespace {

// Evaluation parameters. The paper uses eps = 0.5, 500 trials per
// entry and full datasets; we cap entries and trials so that all four
// tables run in seconds on a laptop -- MAE estimates converge long
// before 500 trials.
constexpr double kEpsilon = 0.5;
constexpr double kLossMultiple = 2.0;
constexpr int kTrials = 50;
constexpr size_t kMaxEntries = 4000;

} // anonymous namespace

int
utilityTableMain(
    const std::string &table_name, const std::string &query_name,
    const std::function<std::unique_ptr<Query>(const Dataset &)>
        &make_query,
    int argc, char **argv)
{
    std::string json_path = jsonPathFromArgs(argc, argv);

    banner(table_name + ": mean absolute error for " + query_name +
               " query",
           "Settings: eps = 0.5, loss bound 2*eps, Bu = 17, "
           "Delta = d/32, exact thresholds;\n"
           "datasets capped at 4000 entries, 50 trials (paper: "
           "full sets, 500 trials).");

    TextTable table;
    table.setHeader({"Dataset", "Setting", "MAE", "AggMAE", "Rel.err",
                     "LDP?", "WorstLoss", "AvgSamples"});

    JsonWriter json;
    json.beginObject();
    json.field("bench", table_name);
    json.field("query", query_name);
    json.field("epsilon", kEpsilon);
    json.field("loss_multiple", kLossMultiple);
    json.field("trials", kTrials);
    json.field("max_entries", static_cast<uint64_t>(kMaxEntries));
    json.beginArray("rows");

    for (const Dataset &data : benchDatasets(kMaxEntries)) {
        auto query = make_query(data);
        auto rows = runFourSettings(data, *query, kEpsilon,
                                    kLossMultiple, kTrials);
        for (const auto &row : rows) {
            table.addRow({
                data.name,
                row.setting,
                TextTable::fmtPlusMinus(row.util.mae,
                                        row.util.mae_std),
                row.agg_supported
                    ? TextTable::fmtPlusMinus(row.agg_mae,
                                              row.agg_mae_std)
                    : "-",
                TextTable::fmtPercent(
                    row.util.mae / data.range.length()),
                row.ldp ? "Y" : "N",
                std::isfinite(row.worst_loss)
                    ? TextTable::fmt(row.worst_loss)
                    : "inf",
                TextTable::fmt(row.util.avgSamplesPerReport(), 3),
            });
            json.beginObject();
            json.field("dataset", data.name);
            json.field("setting", row.setting);
            json.field("mae", row.util.mae);
            json.field("mae_std", row.util.mae_std);
            json.field("agg_supported", row.agg_supported);
            json.field("agg_mae", row.agg_mae);
            json.field("agg_mae_std", row.agg_mae_std);
            json.field("relative_error",
                       row.util.mae / data.range.length());
            json.field("ldp", row.ldp);
            json.field("worst_loss", row.worst_loss);
            json.field("avg_samples_per_report",
                       row.util.avgSamplesPerReport());
            json.field("true_value", row.util.true_value);
            json.endObject();
        }
    }
    json.endArray();
    json.endObject();

    table.print(std::cout);
    std::printf(
        "\nExpected shape (paper %s): the paper's four settings show "
        "similar MAE on every dataset;\nonly the FxP HW Baseline has "
        "LDP? = N (infinite worst-case loss).\nBounded Laplace "
        "confines outputs to the sensor range: truncation cuts "
        "variance\n(often a lower MAE on central means) but biases "
        "values near the range edges.\nDiscrete Laplace pays a "
        "higher MAE: its doubled zero atom costs a scale-invariant\n"
        "ln 2 of loss, bought back by scale inflation. Both are "
        "selected by name through\nthe mechanism registry.\nAggMAE is "
        "the same query answered by the streaming sketch decoder "
        "(src/agg)\nper trial; '-' marks settings/queries the "
        "decoder does not serve.\n",
        table_name.c_str());

    if (!json_path.empty() && json.writeFile(json_path))
        std::printf("JSON written to %s\n", json_path.c_str());
    return 0;
}

} // namespace bench
} // namespace ulpdp
