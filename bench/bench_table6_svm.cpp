/**
 * @file
 * Reproduces Table VI: linear-SVM classification accuracy on a
 * separable synthetic halfspace dataset when the training features
 * are noised with local DP, as a function of training-set size and
 * privacy parameter.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "core/ideal_laplace_mechanism.h"
#include "ml/private_training.h"
#include "ml/svm.h"

int
main()
{
    using namespace ulpdp;
    bench::banner("Table VI: SVM accuracy vs training size and eps",
                  "Separable halfspace in [-1, 1]^4, margin 0.1; "
                  "per-feature Laplace noise; clean test set of "
                  "2000 points.");

    const size_t kDim = 4;
    const double kMargin = 0.1;
    LabelledData pool = makeHalfspaceData(7000, kDim, kMargin, 77);
    LabelledData test;
    for (size_t i = 5000; i < 7000; ++i) {
        test.features.push_back(pool.features[i]);
        test.labels.push_back(pool.labels[i]);
    }

    std::vector<size_t> sizes{1000, 2000, 3000, 4000, 5000};
    std::vector<double> eps_values{0.5, 1.0, 2.0};

    TextTable table;
    std::vector<std::string> header{"Data Size"};
    for (double eps : eps_values)
        header.push_back("eps = " + TextTable::fmt(eps, 1));
    header.push_back("No DP");
    table.setHeader(header);

    for (size_t n : sizes) {
        LabelledData train;
        for (size_t i = 0; i < n; ++i) {
            train.features.push_back(pool.features[i]);
            train.labels.push_back(pool.labels[i]);
        }

        // Training on heavily noised features is high-variance;
        // average each cell over independent noise draws.
        const int kRepeats = 7;
        std::vector<std::string> row{std::to_string(n)};
        for (double eps : eps_values) {
            double acc_sum = 0.0;
            for (int r = 0; r < kRepeats; ++r) {
                IdealLaplaceMechanism mech(SensorRange(-1.0, 1.0),
                                           eps, 100 + n + r);
                LabelledData noised = noiseFeatures(train, mech);
                SvmConfig cfg;
                cfg.seed = 1 + r;
                LinearSvm svm(cfg);
                svm.train(noised);
                acc_sum += svm.accuracy(test);
            }
            row.push_back(
                TextTable::fmtPercent(acc_sum / kRepeats, 0));
        }
        LinearSvm clean;
        clean.train(train);
        row.push_back(TextTable::fmtPercent(clean.accuracy(test), 0));
        table.addRow(row);
    }
    table.print(std::cout);

    std::printf("\nExpected shape (paper Table VI): accuracy rises "
                "with training size in every column; smaller eps "
                "needs more data for the same accuracy; No DP is the "
                "upper envelope (paper: 69%%-82%% at eps = 0.5, "
                "87%%-94%% at eps = 2, ~90-99%% without DP).\n");
    return 0;
}
