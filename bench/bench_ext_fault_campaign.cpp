/**
 * @file
 * Extension: fault-injection campaign report. Runs seeded 10k-
 * transaction chaos campaigns against the budget-controlled device
 * with every fault site firing (URNG bit flips and stuck-at faults,
 * sampler-table SEUs, sensor-bus NACK/timeout/corruption, power loss
 * with checkpoint corruption) and tabulates injected vs detected
 * faults and the empirical worst-case privacy loss of every released
 * report, computed by whole-support enumeration of the output model.
 * The same campaign with hardening disabled shows the invariant
 * violations the hardening exists to prevent.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "common/table.h"
#include "core/budget.h"
#include "core/budget_ledger.h"
#include "core/output_model.h"
#include "core/threshold_calc.h"
#include "rng/health.h"
#include "rng/laplace_table.h"
#include "sim/fault_injector.h"
#include "sim/nor_flash.h"
#include "sim/sensor_bus.h"

namespace {

using namespace ulpdp;

struct CampaignReport
{
    uint64_t injected = 0;
    uint64_t detected = 0;
    uint64_t fresh = 0;
    uint64_t cached = 0;
    uint64_t boots = 1;
    uint64_t violations = 0;
    double worst_loss = 0.0;
    double charged = 0.0;
    double spend_cap = 0.0;
};

CampaignReport
runCampaign(uint64_t seed, bool hardened, uint64_t transactions)
{
    FxpMechanismParams p;
    p.range = SensorRange(0.0, 10.0);
    p.epsilon = 0.5;
    p.uniform_bits = 14;
    p.output_bits = 12;
    p.delta = 10.0 / 32.0;
    p.seed = seed;
    p.rng_integrity_checks = hardened;

    ThresholdCalculator calc(p);
    BudgetControllerConfig cfg;
    cfg.initial_budget = 20.0;
    cfg.replenish_period = 1000;
    cfg.kind = RangeControl::Resampling;
    cfg.segments =
        LossSegments::compute(calc, cfg.kind, {1.5, 2.0, 3.0});
    cfg.resample_attempt_limit = 4096;
    cfg.fail_secure = hardened;
    cfg.table_scrub_period = hardened ? 256 : 0;

    int64_t outer = cfg.segments.back().threshold_index;
    ResamplingOutputModel model(calc.pmf(), calc.span(), outer);
    double bound = 3.0 * p.epsilon + 1e-9;
    double delta = p.resolvedDelta();
    std::vector<double> loss;
    for (int64_t j = model.outputLo(); j <= model.outputHi(); ++j) {
        double mx = 0.0;
        double mn = std::numeric_limits<double>::infinity();
        for (int64_t i = 0; i <= model.span(); ++i) {
            mx = std::max(mx, model.prob(j, i));
            mn = std::min(mn, model.prob(j, i));
        }
        loss.push_back(mn > 0.0
                           ? std::log(mx / mn)
                           : std::numeric_limits<double>::infinity());
    }

    FaultCampaignConfig fc;
    fc.seed = seed * 7919 + 1;
    fc.urng_flip_rate = 0.01;
    fc.urng_stuck_rate = 0.0002;
    fc.table_seu_rate = 0.002;
    fc.bus_nack_rate = 0.02;
    fc.bus_timeout_rate = 0.01;
    fc.bus_corrupt_rate = 0.02;
    fc.power_loss_rate = 0.001;
    fc.checkpoint_corrupt_rate = 0.25;
    FaultInjector injector(fc);

    SensorBus bus(16e6, 400e3);
    RngHealthMonitor health;
    CampaignReport report;
    FaultStats device;

    auto boot = [&](uint64_t n) {
        FxpMechanismParams bp = p;
        bp.seed = seed + 1000 * n;
        auto ctrl = std::make_unique<BudgetController>(bp, cfg);
        health.reset();
        ctrl->rng().urng().setFaultHook(&injector);
        if (hardened) {
            ctrl->rng().urng().attachHealthMonitor(&health);
            ctrl->attachHealthMonitor(&health);
        }
        return ctrl;
    };

    auto ctrl = boot(0);
    BudgetCheckpoint cp = ctrl->checkpoint();
    uint64_t refills_possible = 1;
    uint64_t ticks_accumulated = 0;

    for (uint64_t t = 0; t < transactions; ++t) {
        injector.tick();

        if (injector.powerLossPending()) {
            device += ctrl->faultStats();
            ++report.boots;
            ctrl = boot(report.boots);
            if (hardened) {
                injector.corruptCheckpointMaybe(&cp, sizeof cp);
                ctrl->restoreFromCheckpoint(cp);
            }
        }

        LaplaceSampleTable *table = ctrl->rng().mutableTable();
        size_t seu_byte = 0;
        int seu_bit = 0;
        if (injector.tableSeuPending(
                seu_byte, seu_bit,
                table != nullptr ? table->faultableBytes() : 0)) {
            table->flipBit(seu_byte, seu_bit);
        }

        double x = static_cast<double>(t % 101) * 0.1;
        int64_t wire = std::llround(x / 10.0 * 8191.0);
        FaultStats bus_stats;
        BusReadResult read =
            bus.readSample(13, wire, &injector, {}, &bus_stats);
        device += bus_stats;

        BudgetResponse resp;
        try {
            if (read.ok) {
                double x_used = std::clamp(
                    static_cast<double>(read.value) / 8191.0 * 10.0,
                    0.0, 10.0);
                resp = ctrl->request(x_used);
            } else {
                resp = ctrl->serveCached();
            }
        } catch (const PanicError &) {
            ++report.violations; // escaped the analysed support
            continue;
        }

        // Device time advances; one refill is legal per
        // replenish_period ticks. The unhardened device additionally
        // replays its budget on every reboot, which the spend cap
        // below exposes.
        ctrl->advanceTime(10);
        ticks_accumulated += 10;
        if (ticks_accumulated >= cfg.replenish_period) {
            ticks_accumulated -= cfg.replenish_period;
            ++refills_possible;
        }
        cp = ctrl->checkpoint();

        if (resp.from_cache) {
            ++report.cached;
            continue;
        }
        ++report.fresh;
        report.charged += resp.charged;
        int64_t j = std::llround(resp.value / delta);
        if (j < model.outputLo() || j > model.outputHi()) {
            ++report.violations;
            continue;
        }
        double l = loss[static_cast<size_t>(j - model.outputLo())];
        report.worst_loss = std::max(report.worst_loss, l);
        if (!(l <= bound))
            ++report.violations;
    }

    report.spend_cap =
        static_cast<double>(refills_possible) * cfg.initial_budget;
    if (report.charged > report.spend_cap + 1e-6)
        ++report.violations; // budget replayed across power loss

    device += ctrl->faultStats();
    report.injected = injector.stats().total();
    report.detected = device.detections();
    return report;
}

// ---------------------------------------------------------------------
// --ledger-storm: power-loss storm against the durable budget ledger.
// ---------------------------------------------------------------------

/** splitmix64 finalizer: deterministic digest of the storm outcome. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

struct StormReport
{
    uint64_t cycles = 0;
    uint64_t cycles_survived = 0; //!< mounts that recovered a journal
    uint64_t recoveries = 0;
    uint64_t unrecoverable_halts = 0;
    uint64_t torn_records = 0;
    uint64_t duplicate_records = 0;
    uint64_t spends_journaled = 0;
    uint64_t checkpoints_committed = 0;
    uint64_t rotations = 0;
    uint64_t journal_bytes = 0;
    uint64_t program_losses = 0;
    uint64_t erase_losses = 0;
    uint64_t max_erase_count = 0;
    uint64_t wear_spread = 0;
    uint64_t budget_resurrections = 0; //!< must stay exactly 0
    double ns_per_recovery = 0.0;
    double journal_bytes_per_spend = 0.0;
    uint64_t fingerprint = 0;
};

/**
 * The test-suite storm (LedgerStorm.PowerLossStormNeverResurrectsBudget)
 * at bench scale: crash/recover cycles with the power cut swept over
 * every distinct program offset of a record, counting how the ledger
 * holds up (torn records charged, recoveries, wear) and timing the
 * recovery scan. Resurrection -- a recovered remaining budget above
 * what the released spends allow -- is counted, not asserted: the gate
 * is this binary's exit status plus the --require-zero check in
 * tools/check_bench_regression.py.
 */
StormReport
runLedgerStorm(uint64_t seed, uint64_t cycles)
{
    FlashGeometry geom;
    geom.block_count = 4;
    geom.block_size = 256;
    BudgetLedgerConfig lcfg;
    lcfg.initial_budget = 5.0;
    lcfg.max_record_loss = 1.0;
    constexpr double kSpend = 0.01;

    FaultCampaignConfig fc;
    fc.seed = seed;
    FaultInjector inj(fc);
    auto flash = std::make_unique<NorFlashModel>(geom);
    flash->attachFaultHook(&inj);

    StormReport r;
    r.cycles = cycles;
    double released = 0.0;
    double mount_seconds = 0.0;
    uint64_t final_remaining_bits = 0;

    for (uint64_t cycle = 0; cycle < cycles; ++cycle) {
        BudgetLedger ledger(*flash, lcfg);
        auto c0 = std::chrono::steady_clock::now();
        bool ok = ledger.mount();
        auto c1 = std::chrono::steady_clock::now();
        mount_seconds += std::chrono::duration<double>(c1 - c0).count();

        const LedgerStats &ls = ledger.stats();
        r.recoveries += ls.recoveries;
        r.torn_records += ls.torn_records;
        r.duplicate_records += ls.duplicate_records;

        if (!ok) {
            if (ledger.halted()) {
                ++r.unrecoverable_halts;
                if (ledger.remaining() != 0.0)
                    ++r.budget_resurrections; // halt must strand at 0
                flash = std::make_unique<NorFlashModel>(geom);
                flash->attachFaultHook(&inj);
                released = 0.0;
            } else {
                flash->powerCycle(); // died inside mount; retry
            }
            continue;
        }
        ++r.cycles_survived;

        double true_remaining =
            std::max(0.0, lcfg.initial_budget - released);
        if (ledger.remaining() > true_remaining + 1e-6)
            ++r.budget_resurrections;

        if (cycle % 7 == 3)
            inj.armEraseLossAt(cycle % geom.block_size);
        else
            inj.armProgramLossAt(cycle % BudgetLedger::kBodySize);

        bool cut_fired = false;
        for (int s = 0; s < 12 && !cut_fired; ++s) {
            if (ledger.journalSpend(kSpend))
                released += kSpend;
            else
                cut_fired = true;
            if (cycle % 5 == 4 && !cut_fired &&
                !ledger.commitCheckpoint(ledger.remaining(),
                                         ledger.cache()))
                cut_fired = true;
        }
        r.spends_journaled += ledger.stats().spends_journaled;
        r.checkpoints_committed += ledger.stats().checkpoints_committed;
        r.rotations += ledger.stats().rotations;
        r.journal_bytes += ledger.stats().journal_bytes_written;
        r.max_erase_count =
            std::max(r.max_erase_count,
                     static_cast<uint64_t>(flash->maxEraseCount()));
        r.wear_spread = std::max(
            r.wear_spread, static_cast<uint64_t>(ledger.wearSpread()));
        std::memcpy(&final_remaining_bits, &released, sizeof released);
        if (!flash->alive())
            flash->powerCycle();
    }
    r.program_losses = inj.stats().flash_program_losses;
    r.erase_losses = inj.stats().flash_erase_losses;
    r.ns_per_recovery = r.cycles_survived > 0
        ? mount_seconds * 1e9 / static_cast<double>(r.cycles_survived)
        : 0.0;
    r.journal_bytes_per_spend = r.spends_journaled > 0
        ? static_cast<double>(r.journal_bytes) /
              static_cast<double>(r.spends_journaled)
        : 0.0;

    // Deterministic digest of everything the seed determines (timing
    // excluded): a storm that tears, recovers or halts differently
    // moves the fingerprint.
    uint64_t acc = 0x1ed6e45708aULL;
    for (uint64_t v :
         {r.cycles_survived, r.recoveries, r.unrecoverable_halts,
          r.torn_records, r.duplicate_records, r.spends_journaled,
          r.checkpoints_committed, r.rotations, r.journal_bytes,
          r.program_losses, r.erase_losses, r.max_erase_count,
          r.wear_spread, r.budget_resurrections, final_remaining_bits})
        acc = mix64(acc ^ v);
    r.fingerprint = acc;
    return r;
}

int
runLedgerStormMain(const std::string &json_path)
{
    bench::banner(
        "Extension: durable-ledger power-loss storm",
        "10k crash/recover cycles against the NOR-flash budget "
        "ledger; the power cut sweeps every distinct program offset "
        "of a journal record plus mid-erase cuts. Resurrected budget "
        "anywhere fails this binary.");

    setLoggingEnabled(false); // every torn mount warns
    StormReport r = runLedgerStorm(0x51ED5, 10000);
    setLoggingEnabled(true);

    TextTable table;
    table.setHeader({"metric", "value"});
    auto row = [&](const char *k, uint64_t v) {
        table.addRow({k, std::to_string(v)});
    };
    row("cycles", r.cycles);
    row("cycles survived", r.cycles_survived);
    row("recoveries", r.recoveries);
    row("unrecoverable halts", r.unrecoverable_halts);
    row("torn records charged", r.torn_records);
    row("duplicates absorbed", r.duplicate_records);
    row("spends journaled", r.spends_journaled);
    row("rotations", r.rotations);
    row("program cuts", r.program_losses);
    row("erase cuts", r.erase_losses);
    row("max erase count", r.max_erase_count);
    row("worst wear spread", r.wear_spread);
    row("budget resurrections", r.budget_resurrections);
    table.addRow({"ns per recovery",
                  TextTable::fmt(r.ns_per_recovery, 0)});
    table.addRow({"journal bytes/spend",
                  TextTable::fmt(r.journal_bytes_per_spend, 1)});
    table.print(std::cout);

    bench::JsonWriter json;
    json.beginObject();
    json.field("bench", "ledger storm");
    json.field("cycles", r.cycles);
    json.field("cycles_survived", r.cycles_survived);
    json.field("recoveries", r.recoveries);
    json.field("unrecoverable_halts", r.unrecoverable_halts);
    json.field("torn_records", r.torn_records);
    json.field("duplicate_records", r.duplicate_records);
    json.field("spends_journaled", r.spends_journaled);
    json.field("checkpoints_committed", r.checkpoints_committed);
    json.field("rotations", r.rotations);
    json.field("journal_bytes", r.journal_bytes);
    json.field("program_losses", r.program_losses);
    json.field("erase_losses", r.erase_losses);
    json.field("max_erase_count", r.max_erase_count);
    json.field("wear_spread", r.wear_spread);
    json.field("budget_resurrections", r.budget_resurrections);
    json.field("ns_per_recovery", r.ns_per_recovery);
    json.field("journal_bytes_per_spend", r.journal_bytes_per_spend);
    json.field("fingerprint", r.fingerprint);
    json.endObject();
    if (json.writeFile(json_path))
        std::printf("\nJSON written to %s\n", json_path.c_str());

    std::printf("\nReading: across %llu crash/recover cycles the "
                "recovered ledger was never richer than the spends it "
                "released (%llu resurrections); every ambiguity was "
                "charged (%llu torn records) and %llu unrecoverable "
                "journals stranded at zero remaining budget.\n",
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.budget_resurrections),
                static_cast<unsigned long long>(r.torn_records),
                static_cast<unsigned long long>(r.unrecoverable_halts));
    return r.budget_resurrections == 0 ? 0 : 1;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace ulpdp;

    bool ledger_storm = false;
    for (int i = 1; i < argc; ++i)
        ledger_storm |= std::string(argv[i]) == "--ledger-storm";
    if (ledger_storm) {
        std::string storm_json = bench::jsonPathFromArgs(argc, argv);
        if (storm_json.empty())
            storm_json = "BENCH_fault.json";
        return runLedgerStormMain(storm_json);
    }

    bench::banner(
        "Extension: fault-injection campaign",
        "10k transactions per seed; URNG/table/bus/power/timer fault "
        "sites all firing; empirical worst-case loss by whole-support "
        "enumeration against the 3*eps bound (eps = 0.5).");

    std::string json_path = bench::jsonPathFromArgs(argc, argv);
    if (json_path.empty())
        json_path = "BENCH_fault_campaign.json";

    setLoggingEnabled(false); // the campaigns warn on every detection
    TextTable table;
    table.setHeader({"Config", "seed", "injected", "detected", "fresh",
                     "cached", "boots", "worst loss", "charged",
                     "cap", "violations"});

    bench::JsonWriter json;
    json.beginObject();
    json.field("bench", "fault campaign");
    json.beginArray("campaigns");
    uint64_t hardened_violations = 0;
    uint64_t unhardened_violations = 0;
    for (uint64_t seed : {1, 2, 3}) {
        for (bool hardened : {true, false}) {
            CampaignReport r = runCampaign(seed, hardened, 10000);
            (hardened ? hardened_violations : unhardened_violations) +=
                r.violations;
            json.beginObject();
            json.field("hardened", hardened);
            json.field("seed", seed);
            json.field("injected", r.injected);
            json.field("detected", r.detected);
            json.field("fresh", r.fresh);
            json.field("cached", r.cached);
            json.field("boots", r.boots);
            json.field("worst_loss", r.worst_loss);
            json.field("charged", r.charged);
            json.field("spend_cap", r.spend_cap);
            json.field("violations", r.violations);
            json.endObject();
            table.addRow({
                hardened ? "hardened" : "unhardened",
                std::to_string(seed),
                std::to_string(r.injected),
                std::to_string(r.detected),
                std::to_string(r.fresh),
                std::to_string(r.cached),
                std::to_string(r.boots),
                std::isinf(r.worst_loss) ? "inf"
                                         : TextTable::fmt(r.worst_loss, 3),
                TextTable::fmt(r.charged, 1),
                TextTable::fmt(r.spend_cap, 1),
                std::to_string(r.violations),
            });
        }
    }
    setLoggingEnabled(true);
    table.print(std::cout);

    json.endArray();
    json.field("hardened_violations", hardened_violations);
    json.field("unhardened_violations", unhardened_violations);
    json.endObject();
    if (json.writeFile(json_path))
        std::printf("\nJSON written to %s\n", json_path.c_str());

    std::printf("\nReading: the hardened device ends every campaign "
                "with zero invariant violations (%llu total) -- every "
                "detected fault degrades to cache replay, which leaks "
                "nothing new. The unhardened device racks up %llu "
                "violations from the very same fault stream.\n",
                static_cast<unsigned long long>(hardened_violations),
                static_cast<unsigned long long>(unhardened_violations));
    return hardened_violations == 0 ? 0 : 1;
}
