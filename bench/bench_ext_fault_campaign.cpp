/**
 * @file
 * Extension: fault-injection campaign report. Runs seeded 10k-
 * transaction chaos campaigns against the budget-controlled device
 * with every fault site firing (URNG bit flips and stuck-at faults,
 * sampler-table SEUs, sensor-bus NACK/timeout/corruption, power loss
 * with checkpoint corruption) and tabulates injected vs detected
 * faults and the empirical worst-case privacy loss of every released
 * report, computed by whole-support enumeration of the output model.
 * The same campaign with hardening disabled shows the invariant
 * violations the hardening exists to prevent.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "common/table.h"
#include "core/budget.h"
#include "core/output_model.h"
#include "core/threshold_calc.h"
#include "rng/health.h"
#include "rng/laplace_table.h"
#include "sim/fault_injector.h"
#include "sim/sensor_bus.h"

namespace {

using namespace ulpdp;

struct CampaignReport
{
    uint64_t injected = 0;
    uint64_t detected = 0;
    uint64_t fresh = 0;
    uint64_t cached = 0;
    uint64_t boots = 1;
    uint64_t violations = 0;
    double worst_loss = 0.0;
    double charged = 0.0;
    double spend_cap = 0.0;
};

CampaignReport
runCampaign(uint64_t seed, bool hardened, uint64_t transactions)
{
    FxpMechanismParams p;
    p.range = SensorRange(0.0, 10.0);
    p.epsilon = 0.5;
    p.uniform_bits = 14;
    p.output_bits = 12;
    p.delta = 10.0 / 32.0;
    p.seed = seed;
    p.rng_integrity_checks = hardened;

    ThresholdCalculator calc(p);
    BudgetControllerConfig cfg;
    cfg.initial_budget = 20.0;
    cfg.replenish_period = 1000;
    cfg.kind = RangeControl::Resampling;
    cfg.segments =
        LossSegments::compute(calc, cfg.kind, {1.5, 2.0, 3.0});
    cfg.resample_attempt_limit = 4096;
    cfg.fail_secure = hardened;
    cfg.table_scrub_period = hardened ? 256 : 0;

    int64_t outer = cfg.segments.back().threshold_index;
    ResamplingOutputModel model(calc.pmf(), calc.span(), outer);
    double bound = 3.0 * p.epsilon + 1e-9;
    double delta = p.resolvedDelta();
    std::vector<double> loss;
    for (int64_t j = model.outputLo(); j <= model.outputHi(); ++j) {
        double mx = 0.0;
        double mn = std::numeric_limits<double>::infinity();
        for (int64_t i = 0; i <= model.span(); ++i) {
            mx = std::max(mx, model.prob(j, i));
            mn = std::min(mn, model.prob(j, i));
        }
        loss.push_back(mn > 0.0
                           ? std::log(mx / mn)
                           : std::numeric_limits<double>::infinity());
    }

    FaultCampaignConfig fc;
    fc.seed = seed * 7919 + 1;
    fc.urng_flip_rate = 0.01;
    fc.urng_stuck_rate = 0.0002;
    fc.table_seu_rate = 0.002;
    fc.bus_nack_rate = 0.02;
    fc.bus_timeout_rate = 0.01;
    fc.bus_corrupt_rate = 0.02;
    fc.power_loss_rate = 0.001;
    fc.checkpoint_corrupt_rate = 0.25;
    FaultInjector injector(fc);

    SensorBus bus(16e6, 400e3);
    RngHealthMonitor health;
    CampaignReport report;
    FaultStats device;

    auto boot = [&](uint64_t n) {
        FxpMechanismParams bp = p;
        bp.seed = seed + 1000 * n;
        auto ctrl = std::make_unique<BudgetController>(bp, cfg);
        health.reset();
        ctrl->rng().urng().setFaultHook(&injector);
        if (hardened) {
            ctrl->rng().urng().attachHealthMonitor(&health);
            ctrl->attachHealthMonitor(&health);
        }
        return ctrl;
    };

    auto ctrl = boot(0);
    BudgetCheckpoint cp = ctrl->checkpoint();
    uint64_t refills_possible = 1;
    uint64_t ticks_accumulated = 0;

    for (uint64_t t = 0; t < transactions; ++t) {
        injector.tick();

        if (injector.powerLossPending()) {
            device += ctrl->faultStats();
            ++report.boots;
            ctrl = boot(report.boots);
            if (hardened) {
                injector.corruptCheckpointMaybe(&cp, sizeof cp);
                ctrl->restoreFromCheckpoint(cp);
            }
        }

        LaplaceSampleTable *table = ctrl->rng().mutableTable();
        size_t seu_byte = 0;
        int seu_bit = 0;
        if (injector.tableSeuPending(
                seu_byte, seu_bit,
                table != nullptr ? table->faultableBytes() : 0)) {
            table->flipBit(seu_byte, seu_bit);
        }

        double x = static_cast<double>(t % 101) * 0.1;
        int64_t wire = std::llround(x / 10.0 * 8191.0);
        FaultStats bus_stats;
        BusReadResult read =
            bus.readSample(13, wire, &injector, {}, &bus_stats);
        device += bus_stats;

        BudgetResponse resp;
        try {
            if (read.ok) {
                double x_used = std::clamp(
                    static_cast<double>(read.value) / 8191.0 * 10.0,
                    0.0, 10.0);
                resp = ctrl->request(x_used);
            } else {
                resp = ctrl->serveCached();
            }
        } catch (const PanicError &) {
            ++report.violations; // escaped the analysed support
            continue;
        }

        // Device time advances; one refill is legal per
        // replenish_period ticks. The unhardened device additionally
        // replays its budget on every reboot, which the spend cap
        // below exposes.
        ctrl->advanceTime(10);
        ticks_accumulated += 10;
        if (ticks_accumulated >= cfg.replenish_period) {
            ticks_accumulated -= cfg.replenish_period;
            ++refills_possible;
        }
        cp = ctrl->checkpoint();

        if (resp.from_cache) {
            ++report.cached;
            continue;
        }
        ++report.fresh;
        report.charged += resp.charged;
        int64_t j = std::llround(resp.value / delta);
        if (j < model.outputLo() || j > model.outputHi()) {
            ++report.violations;
            continue;
        }
        double l = loss[static_cast<size_t>(j - model.outputLo())];
        report.worst_loss = std::max(report.worst_loss, l);
        if (!(l <= bound))
            ++report.violations;
    }

    report.spend_cap =
        static_cast<double>(refills_possible) * cfg.initial_budget;
    if (report.charged > report.spend_cap + 1e-6)
        ++report.violations; // budget replayed across power loss

    device += ctrl->faultStats();
    report.injected = injector.stats().total();
    report.detected = device.detections();
    return report;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace ulpdp;
    bench::banner(
        "Extension: fault-injection campaign",
        "10k transactions per seed; URNG/table/bus/power/timer fault "
        "sites all firing; empirical worst-case loss by whole-support "
        "enumeration against the 3*eps bound (eps = 0.5).");

    std::string json_path = bench::jsonPathFromArgs(argc, argv);
    if (json_path.empty())
        json_path = "BENCH_fault_campaign.json";

    setLoggingEnabled(false); // the campaigns warn on every detection
    TextTable table;
    table.setHeader({"Config", "seed", "injected", "detected", "fresh",
                     "cached", "boots", "worst loss", "charged",
                     "cap", "violations"});

    bench::JsonWriter json;
    json.beginObject();
    json.field("bench", "fault campaign");
    json.beginArray("campaigns");
    uint64_t hardened_violations = 0;
    uint64_t unhardened_violations = 0;
    for (uint64_t seed : {1, 2, 3}) {
        for (bool hardened : {true, false}) {
            CampaignReport r = runCampaign(seed, hardened, 10000);
            (hardened ? hardened_violations : unhardened_violations) +=
                r.violations;
            json.beginObject();
            json.field("hardened", hardened);
            json.field("seed", seed);
            json.field("injected", r.injected);
            json.field("detected", r.detected);
            json.field("fresh", r.fresh);
            json.field("cached", r.cached);
            json.field("boots", r.boots);
            json.field("worst_loss", r.worst_loss);
            json.field("charged", r.charged);
            json.field("spend_cap", r.spend_cap);
            json.field("violations", r.violations);
            json.endObject();
            table.addRow({
                hardened ? "hardened" : "unhardened",
                std::to_string(seed),
                std::to_string(r.injected),
                std::to_string(r.detected),
                std::to_string(r.fresh),
                std::to_string(r.cached),
                std::to_string(r.boots),
                std::isinf(r.worst_loss) ? "inf"
                                         : TextTable::fmt(r.worst_loss, 3),
                TextTable::fmt(r.charged, 1),
                TextTable::fmt(r.spend_cap, 1),
                std::to_string(r.violations),
            });
        }
    }
    setLoggingEnabled(true);
    table.print(std::cout);

    json.endArray();
    json.field("hardened_violations", hardened_violations);
    json.field("unhardened_violations", unhardened_violations);
    json.endObject();
    if (json.writeFile(json_path))
        std::printf("\nJSON written to %s\n", json_path.c_str());

    std::printf("\nReading: the hardened device ends every campaign "
                "with zero invariant violations (%llu total) -- every "
                "detected fault degrades to cache replay, which leaks "
                "nothing new. The unhardened device racks up %llu "
                "violations from the very same fault stream.\n",
                static_cast<unsigned long long>(hardened_violations),
                static_cast<unsigned long long>(unhardened_violations));
    return hardened_violations == 0 ? 0 : 1;
}
