/**
 * @file
 * Reproduces Table V: mean absolute error of the counting query
 * (entries at or above the dataset mean -- a representative
 * population-count question like "patients with elevated blood
 * pressure").
 */

#include "utility_table.h"

int
main(int argc, char **argv)
{
    using namespace ulpdp;
    return bench::utilityTableMain(
        "Table V", "counting",
        [](const Dataset &d) {
            return std::make_unique<CountAboveQuery>(d.mean());
        },
        argc, argv);
}
