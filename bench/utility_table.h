/**
 * @file
 * Shared driver for the Tables II-V utility benches: for every
 * Table I dataset, run the paper's four evaluation settings plus the
 * two registry mechanisms (bounded / discrete Laplace) on one query
 * and print the MAE +- std, relative error and LDP verdict rows in
 * the layout of the paper's tables.
 */

#ifndef ULPDP_BENCH_UTILITY_TABLE_H
#define ULPDP_BENCH_UTILITY_TABLE_H

#include <functional>
#include <memory>
#include <string>

#include "bench_util.h"
#include "query/query.h"

namespace ulpdp {
namespace bench {

/**
 * Run one full utility table.
 *
 * @param table_name e.g. "Table II".
 * @param query_name e.g. "mean".
 * @param make_query Builds the query per dataset (the counting query
 *        thresholds at the dataset mean, for example).
 * @param argc/argv Bench command line; `--json <path>` additionally
 *        writes the table as machine-readable JSON.
 * @return Process exit code.
 */
int utilityTableMain(
    const std::string &table_name, const std::string &query_name,
    const std::function<std::unique_ptr<Query>(const Dataset &)>
        &make_query,
    int argc = 0, char **argv = nullptr);

} // namespace bench
} // namespace ulpdp

#endif // ULPDP_BENCH_UTILITY_TABLE_H
