/**
 * @file
 * Extension: table-driven O(1) sampling fast path.
 *
 * The FxP Laplace pipeline is a fixed deterministic map from 2^Bu
 * URNG states to output indices, so its entire output distribution
 * can be precomputed at configuration time into a direct-lookup
 * table. This bench measures the per-draw cost of the naive pipeline
 * (Reference log and CORDIC log) against the table path, and the
 * per-report cost of accept-reject resampling against the truncated
 * direct-inversion sampler that serves a windowed draw in one table
 * lookup.
 *
 * Acceptance target: the table path is >= 5x faster per draw than
 * the naive CORDIC pipeline it replaces.
 */

#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "rng/batch_sampler.h"
#include "rng/fxp_laplace.h"
#include "rng/laplace_table.h"
#include "rng/taus_bank.h"

namespace {

using namespace ulpdp;
using Clock = std::chrono::steady_clock;

FxpLaplaceConfig
benchConfig(FxpLaplaceConfig::LogMode log_mode,
            FxpLaplaceConfig::SamplePath path)
{
    // The paper's Bu = 17 URNG, Delta = d/32 with d = 10, eps = 0.5.
    FxpLaplaceConfig cfg;
    cfg.uniform_bits = 17;
    cfg.output_bits = 14;
    cfg.delta = 10.0 / 32.0;
    cfg.lambda = 10.0 / 0.5;
    cfg.log_mode = log_mode;
    cfg.sample_path = path;
    return cfg;
}

/** ns per draw over n unbounded draws (checksum defeats DCE). */
double
timeScalar(FxpLaplaceRng &rng, int n, int64_t &sink)
{
    auto t0 = Clock::now();
    for (int i = 0; i < n; ++i)
        sink += rng.sampleIndexFast();
    auto t1 = Clock::now();
    return std::chrono::duration<double, std::nano>(t1 - t0).count() /
           n;
}

/** ns per draw when the naive pipeline is called directly. */
double
timeNaive(FxpLaplaceRng &rng, int n, int64_t &sink)
{
    auto t0 = Clock::now();
    for (int i = 0; i < n; ++i)
        sink += rng.sampleIndex();
    auto t1 = Clock::now();
    return std::chrono::duration<double, std::nano>(t1 - t0).count() /
           n;
}

/** ns per draw for the batched entry point. */
double
timeBatch(FxpLaplaceRng &rng, int n, int64_t &sink)
{
    std::vector<int64_t> buf(1024);
    int rounds = n / static_cast<int>(buf.size());
    auto t0 = Clock::now();
    for (int r = 0; r < rounds; ++r) {
        rng.sampleBatch(buf.data(), buf.size());
        sink += buf[0] + buf[buf.size() - 1];
    }
    auto t1 = Clock::now();
    return std::chrono::duration<double, std::nano>(t1 - t0).count() /
           (rounds * static_cast<double>(buf.size()));
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string json_path = bench::jsonPathFromArgs(argc, argv);
    if (json_path.empty())
        json_path = "BENCH_sampler.json";

    bench::banner("Extension: table-driven sampling fast path",
                  "Per-draw latency of the naive FxP pipeline vs the "
                  "precomputed lookup table, and accept-reject "
                  "resampling vs truncated direct inversion.");

    const int kDraws = 2000000;
    const int kWarmup = 100000;
    int64_t sink = 0;

    // --- unbounded draws -------------------------------------------
    FxpLaplaceRng ref(benchConfig(FxpLaplaceConfig::LogMode::Reference,
                                  FxpLaplaceConfig::SamplePath::Naive),
                      1);
    FxpLaplaceRng cordic(
        benchConfig(FxpLaplaceConfig::LogMode::Cordic,
                    FxpLaplaceConfig::SamplePath::Naive),
        1);
    FxpLaplaceRng fast(benchConfig(FxpLaplaceConfig::LogMode::Cordic,
                                   FxpLaplaceConfig::SamplePath::Table),
                       1);

    // Build the table outside the timed region and report the cost.
    auto tb0 = Clock::now();
    const LaplaceSampleTable &table = fast.table();
    auto tb1 = Clock::now();
    double build_ms =
        std::chrono::duration<double, std::milli>(tb1 - tb0).count();

    timeNaive(ref, kWarmup, sink);
    timeNaive(cordic, kWarmup, sink);
    timeScalar(fast, kWarmup, sink);

    double ns_ref = timeNaive(ref, kDraws, sink);
    double ns_cordic = timeNaive(cordic, kDraws, sink);
    double ns_table = timeScalar(fast, kDraws, sink);
    double ns_batch = timeBatch(fast, kDraws, sink);

    TextTable draws;
    draws.setHeader({"sampler", "ns/draw", "vs CORDIC pipeline"});
    auto row = [&](const char *name, double ns) {
        char buf[32], ratio[32];
        std::snprintf(buf, sizeof buf, "%.1f", ns);
        std::snprintf(ratio, sizeof ratio, "%.1fx", ns_cordic / ns);
        draws.addRow({name, buf, ratio});
    };
    row("naive pipeline (Reference log)", ns_ref);
    row("naive pipeline (CORDIC log)", ns_cordic);
    row("table lookup (scalar)", ns_table);
    row("table lookup (batched)", ns_batch);
    draws.print(std::cout);

    std::printf("\ntable: %llu states, max index %lld, %.1f KiB ROM, "
                "built in %.1f ms\n",
                static_cast<unsigned long long>(table.states()),
                static_cast<long long>(table.maxIndex()),
                table.memoryBytes() / 1024.0, build_ms);

    double speedup = ns_cordic / ns_table;
    std::printf("table path speedup vs naive CORDIC pipeline: %.1fx "
                "(target >= 5x): %s\n",
                speedup, speedup >= 5.0 ? "PASS" : "FAIL");

    // --- windowed draws (resampling) -------------------------------
    // A tight window makes accept-reject redraw often; truncated
    // inversion always serves the report in one lookup.
    const int64_t kLo = -4, kHi = 4;
    const int kReports = 200000;

    FxpLaplaceRng rejector(
        benchConfig(FxpLaplaceConfig::LogMode::Cordic,
                    FxpLaplaceConfig::SamplePath::Naive),
        2);
    FxpLaplaceRng inverter(
        benchConfig(FxpLaplaceConfig::LogMode::Cordic,
                    FxpLaplaceConfig::SamplePath::Table),
        2);

    uint64_t before = rejector.samplesDrawn();
    auto ar0 = Clock::now();
    for (int i = 0; i < kReports; ++i) {
        int64_t k;
        do {
            k = rejector.sampleIndex();
        } while (k < kLo || k > kHi);
        sink += k;
    }
    auto ar1 = Clock::now();
    double ns_reject =
        std::chrono::duration<double, std::nano>(ar1 - ar0).count() /
        kReports;
    double draws_per_report =
        static_cast<double>(rejector.samplesDrawn() - before) /
        kReports;

    auto ti0 = Clock::now();
    for (int i = 0; i < kReports; ++i) {
        int64_t k;
        if (inverter.sampleIndexTruncated(kLo, kHi, k))
            sink += k;
    }
    auto ti1 = Clock::now();
    double ns_trunc =
        std::chrono::duration<double, std::nano>(ti1 - ti0).count() /
        kReports;

    TextTable windowed;
    windowed.setHeader(
        {"windowed sampler", "ns/report", "pipeline draws/report"});
    {
        char a[32], b[32];
        std::snprintf(a, sizeof a, "%.1f", ns_reject);
        std::snprintf(b, sizeof b, "%.2f", draws_per_report);
        windowed.addRow({"accept-reject (CORDIC redraws)", a, b});
        std::snprintf(a, sizeof a, "%.1f", ns_trunc);
        windowed.addRow({"truncated direct inversion", a, "1.00"});
    }
    std::printf("\nwindow [%lld, %lld] around the input index:\n",
                static_cast<long long>(kLo),
                static_cast<long long>(kHi));
    windowed.print(std::cout);

    // --- wide rect draws (the fleet hot path) ----------------------
    // A 16-lane bank steps 16 independent streams in lockstep and
    // feeds blocked table lookups; this is the per-draw cost the
    // fleet engine pays when it batches 16 consecutive nodes.
    constexpr size_t kLanes = TausBank::kMaxLanes;
    constexpr size_t kTrials = 1024;
    uint64_t lane_seeds[kLanes];
    TausBank::deriveLaneSeeds(3, lane_seeds, kLanes);
    std::vector<int64_t> rect(kTrials * kLanes);

    BatchSampler rect_bs(fast.sharedTable(),
                         fast.config().uniform_bits,
                         fast.quantizer().maxIndex());
    rect_bs.seedLanes(lane_seeds, kLanes);
    const int kRectRounds =
        kDraws / static_cast<int>(kTrials * kLanes);
    auto br0 = Clock::now();
    for (int r = 0; r < kRectRounds; ++r) {
        rect_bs.sampleRect(rect.data(), kTrials);
        sink += rect[0] + rect[rect.size() - 1];
    }
    auto br1 = Clock::now();
    double ns_rect =
        std::chrono::duration<double, std::nano>(br1 - br0).count() /
        (static_cast<double>(kRectRounds) * kTrials * kLanes);

    BatchSampler trunc_bs(fast.sharedTable(),
                          fast.config().uniform_bits,
                          fast.quantizer().maxIndex());
    trunc_bs.seedLanes(lane_seeds, kLanes);
    BatchSampler::Window windows[kLanes];
    for (size_t l = 0; l < kLanes; ++l)
        windows[l] = {kLo, kHi};
    auto bt0 = Clock::now();
    for (int r = 0; r < kRectRounds; ++r) {
        trunc_bs.sampleTruncatedRect(windows, rect.data(), kTrials);
        sink += rect[0] + rect[rect.size() - 1];
    }
    auto bt1 = Clock::now();
    double ns_trunc_rect =
        std::chrono::duration<double, std::nano>(bt1 - bt0).count() /
        (static_cast<double>(kRectRounds) * kTrials * kLanes);

    TextTable bank;
    bank.setHeader({"16-lane batch sampler", "ns/draw",
                    "vs scalar table path"});
    {
        char a[32], b[32];
        std::snprintf(a, sizeof a, "%.2f", ns_rect);
        std::snprintf(b, sizeof b, "%.1fx", ns_table / ns_rect);
        bank.addRow({"unbounded rect", a, b});
        std::snprintf(a, sizeof a, "%.2f", ns_trunc_rect);
        std::snprintf(b, sizeof b, "%.1fx", ns_trunc / ns_trunc_rect);
        bank.addRow({"truncated rect (window above)", a, b});
    }
    std::printf("\nURNG lane bank: %zu lanes, %s kernel:\n", kLanes,
                TausBank::kernelName());
    bank.print(std::cout);

    std::printf("\nchecksum %lld\n", static_cast<long long>(sink));
    std::printf("\nTakeaway: the pipeline is a fixed map over 2^Bu "
                "URNG states, so one configuration-time enumeration "
                "replaces every per-draw CORDIC iteration with a "
                "single lookup, and window-conditioned draws need no "
                "rejection loop at all -- same bits, same "
                "distribution, O(1) worst case.\n");

    if (!json_path.empty()) {
        bench::JsonWriter json;
        json.beginObject();
        json.field("bench", "sampler table fast path");
        json.field("ns_per_draw_reference_log", ns_ref);
        json.field("ns_per_draw_cordic_log", ns_cordic);
        json.field("ns_per_draw_table_scalar", ns_table);
        json.field("ns_per_draw_table_batched", ns_batch);
        json.field("table_speedup_vs_cordic", speedup);
        json.field("table_build_ms", build_ms);
        json.field("table_rom_bytes",
                   static_cast<uint64_t>(table.memoryBytes()));
        json.field("ns_per_report_accept_reject", ns_reject);
        json.field("ns_per_report_truncated_inversion", ns_trunc);
        json.field("accept_reject_draws_per_report",
                   draws_per_report);
        json.field("simd_kernel", TausBank::kernelName());
        json.field("batch_lanes", static_cast<uint64_t>(kLanes));
        json.field("ns_per_draw_rect_batch", ns_rect);
        json.field("ns_per_draw_truncated_rect_batch",
                   ns_trunc_rect);
        json.endObject();
        if (json.writeFile(json_path))
            std::printf("JSON written to %s\n", json_path.c_str());
    }
    return 0;
}
