/**
 * @file
 * Reproduces Fig. 12: DP-Box output histograms for two values from
 * the Statlog heart-rate dataset, without range control. In the bulk
 * the histograms overlap (privacy looks fine); zoomed into the tail
 * there are outputs only one of the two values can generate --
 * receiving such an output identifies the datum exactly, so privacy
 * is NOT preserved. With resampling or thresholding the supports
 * coincide and the distinguishing region disappears.
 */

#include <cstdio>
#include <iostream>
#include <map>

#include "bench_util.h"
#include "common/table.h"
#include "core/fxp_mechanism.h"
#include "core/output_model.h"
#include "core/threshold_calc.h"
#include "core/thresholding_mechanism.h"
#include "data/generators.h"

namespace {

using namespace ulpdp;

std::map<int64_t, uint64_t>
histogramOf(Mechanism &mech, const FxpMechanismBase &grid, double x,
            int trials)
{
    std::map<int64_t, uint64_t> counts;
    for (int i = 0; i < trials; ++i)
        ++counts[grid.toIndex(mech.noise(x).value)];
    return counts;
}

/** Count output bins hit by exactly one of the two histograms. */
uint64_t
distinguishingBins(const std::map<int64_t, uint64_t> &a,
                   const std::map<int64_t, uint64_t> &b)
{
    uint64_t n = 0;
    for (const auto &[k, c] : a) {
        if (c > 0 && b.count(k) == 0)
            ++n;
    }
    for (const auto &[k, c] : b) {
        if (c > 0 && a.count(k) == 0)
            ++n;
    }
    return n;
}

} // anonymous namespace

int
main()
{
    bench::banner("Fig. 12: DP-Box output histograms for two Statlog "
                  "heart values (eps = 1)",
                  "Two blood pressures (110 and 180 mm Hg), 200000 "
                  "noisings each, naive FxP noising vs "
                  "thresholding.");

    Dataset heart = makeStatlogHeart();
    FxpMechanismParams p = bench::standardParams(heart, 1.0);
    const double x1 = 110.0;
    const double x2 = 180.0;
    const int kTrials = 200000;

    NaiveFxpMechanism naive1(p);
    FxpMechanismParams p2 = p;
    p2.seed = 2;
    NaiveFxpMechanism naive2(p2);

    auto h1 = histogramOf(naive1, naive1, x1, kTrials);
    auto h2 = histogramOf(naive2, naive2, x2, kTrials);

    std::printf("\n(a) Naive FxP noising -- bulk overlap:\n\n");
    TextTable bulk;
    bulk.setHeader({"output (mm Hg)", "count | x=110", "count | x=180"});
    for (int64_t j = naive1.toIndex(60.0); j <= naive1.toIndex(230.0);
         j += 8) {
        bulk.addRow({
            TextTable::fmt(naive1.toValue(j), 1),
            std::to_string(h1.count(j) ? h1[j] : 0),
            std::to_string(h2.count(j) ? h2[j] : 0),
        });
    }
    bulk.print(std::cout);

    uint64_t naive_dist = distinguishingBins(h1, h2);

    // Exact (analytic) count of distinguishing outputs: bins in the
    // support of one value's distribution but not the other's.
    FxpLaplacePmf pmf(p.rngConfig());
    int64_t i1 = naive1.toIndex(x1);
    int64_t i2 = naive1.toIndex(x2);
    uint64_t analytic_dist = 0;
    for (int64_t j = i1 - pmf.maxIndex(); j <= i2 + pmf.maxIndex();
         ++j) {
        bool a = pmf.pmf(j - i1) > 0.0;
        bool b = pmf.pmf(j - i2) > 0.0;
        if (a != b)
            ++analytic_dist;
    }

    std::printf("\n(b) Tail zoom: %llu distinguishing output bins "
                "observed in %d noisings per value; the exact "
                "analysis says %llu bins are producible by exactly "
                "ONE of the two values. Reporting any of them "
                "reveals the datum: privacy NOT preserved.\n",
                static_cast<unsigned long long>(naive_dist), kTrials,
                static_cast<unsigned long long>(analytic_dist));

    // The fix: thresholding confines both supports to the same window.
    ThresholdCalculator calc(p);
    int64_t t = calc.exactIndex(RangeControl::Thresholding, 2.0);
    ThresholdingMechanism fix1(p, t);
    FxpMechanismParams p3 = p;
    p3.seed = 5;
    ThresholdingMechanism fix2(p3, t);
    auto f1 = histogramOf(fix1, fix1, x1, kTrials);
    auto f2 = histogramOf(fix2, fix2, x2, kTrials);
    uint64_t fixed_dist = distinguishingBins(f1, f2);

    // Exact support comparison under thresholding: zero bins may
    // distinguish the two values.
    auto pmf_shared = std::make_shared<FxpLaplacePmf>(p.rngConfig());
    ThresholdingOutputModel model(pmf_shared,
                                  fix1.hiIndex() - fix1.loIndex(), t);
    uint64_t exact_fixed = 0;
    int64_t r1 = i1 - fix1.loIndex();
    int64_t r2 = i2 - fix1.loIndex();
    for (int64_t j = model.outputLo(); j <= model.outputHi(); ++j) {
        bool a = model.prob(j, r1) > 0.0;
        bool b = model.prob(j, r2) > 0.0;
        if (a != b)
            ++exact_fixed;
    }

    std::printf("\n(c) Proposed DP-Box (thresholding, n_th2 = %lld "
                "bins): the exact analysis finds %llu distinguishing "
                "bins (the supports coincide); the %llu singletons "
                "seen empirically are finite-sample noise in rare "
                "shared bins.\n",
                static_cast<long long>(t),
                static_cast<unsigned long long>(exact_fixed),
                static_cast<unsigned long long>(fixed_dist));
    std::printf("\nExpected shape (paper Fig. 12): naive histograms "
                "distinguishable in the tails; the proposed DP-Box "
                "eliminates (essentially all) distinguishing "
                "outputs.\n");
    return 0;
}
