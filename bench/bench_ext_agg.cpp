/**
 * @file
 * Extension: streaming aggregation layer throughput and accuracy.
 *
 * Three sections:
 *
 *  1. Pure ingest rate, single thread. The fleet hot loop's entire
 *     per-report aggregation cost is one uint64 increment into a
 *     per-block delta buffer plus an amortized per-block flush
 *     (CohortSketch::ingestDelta: span total updates into the slot
 *     array, count-min and quantile sketches). This section replays a
 *     precomputed slot stream through exactly that protocol and
 *     reports sustained reports/second -- the number that must beat
 *     the fleet engine's own emission rate for the collector to keep
 *     pace at line rate (floor gated in CI: >= 2e7/s).
 *
 *  2. Population sweep. Fleets of 1e5 / 1e6 / 1e7 nodes (capped by
 *     --nodes-max) with aggregation on vs off at the full thread
 *     count: end-to-end overhead of running the collector inside the
 *     epoch, post-merge decode latency, sketch memory per node, and
 *     the decoded mean's absolute error against the true population
 *     mean next to the raw released mean's error (the boundary
 *     unbiasing headline: the cohort data are pinned off-center at
 *     data_mean 7.5 so the thresholding clamp actually bites).
 *
 *  3. Determinism. At the smallest population the agg-on fleet runs
 *     at 1, 2 and hw threads plus the forced-scalar path; every
 *     fingerprint (which folds the sketch counters AND the decoded
 *     double bits) must match. A mismatch is a nonzero exit, not a
 *     table footnote.
 *
 * Flags:
 *   --nodes-max N  largest sweep population   (default 10000000)
 *   --reports R    reports per node           (default 2)
 *   --repeats N    measured epochs, best-of   (default 3)
 *   --json PATH    JSON output path           (default BENCH_agg.json)
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "agg/sketch.h"
#include "agg/stream.h"
#include "bench_util.h"
#include "common/table.h"
#include "fleet/fleet.h"

namespace {

using namespace ulpdp;

uint64_t
flagValue(int argc, char **argv, const char *flag, uint64_t fallback)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::string(argv[i]) == flag)
            return std::strtoull(argv[i + 1], nullptr, 10);
    }
    return fallback;
}

/** Paper reference device on [0, 10]: the span the fleet sketches. */
FxpMechanismParams
referenceParams()
{
    FxpMechanismParams p;
    p.range = SensorRange(0.0, 10.0);
    p.epsilon = 0.5;
    p.uniform_bits = 17;
    p.output_bits = 14;
    p.delta = 10.0 / 32.0;
    return p;
}

FleetConfig
makeConfig(uint64_t nodes, uint32_t reports, bool agg_on)
{
    FxpMechanismParams p = referenceParams();
    FleetConfig fc;
    fc.master_seed = 42;
    auto makeCohort = [&](const char *name, CohortMechanism m) {
        CohortConfig c;
        c.name = name;
        c.mechanism = m;
        c.params = p;
        c.loss_multiple = 2.0;
        c.nodes = nodes;
        c.reports_per_node = reports;
        // Off-center population: the thresholding clamp piles real
        // mass onto the window-edge atoms, which is the bias the
        // decoder exists to undo.
        c.data_mean = 7.5;
        c.data_mean_set = true;
        c.analyze_loss = false;
        c.agg.enabled = agg_on;
        return c;
    };
    fc.cohorts = {
        makeCohort("thresholding", CohortMechanism::Thresholding),
        makeCohort("resampling", CohortMechanism::Resampling),
    };
    return fc;
}

/** Best-of-N measured epochs after one untimed warmup; verifies every
 *  epoch reproduces the warmup fingerprint. */
struct MeasuredRun
{
    FleetReport report;    // last measured epoch (carries agg state)
    double best_rate = 0.0;
    uint64_t fingerprint = 0;
    bool deterministic = true;
};

MeasuredRun
measure(FleetRunner &runner, unsigned threads, uint32_t repeats)
{
    MeasuredRun m;
    FleetReport warm = runner.run(threads);
    m.fingerprint = warm.fingerprint();
    m.best_rate = warm.reportsPerSecond();
    m.report = std::move(warm);
    for (uint32_t r = 0; r < repeats; ++r) {
        FleetReport rep = runner.run(threads);
        m.deterministic =
            m.deterministic && rep.fingerprint() == m.fingerprint;
        m.best_rate = std::max(m.best_rate, rep.reportsPerSecond());
        m.report = std::move(rep);
    }
    return m;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    uint64_t nodes_max =
        flagValue(argc, argv, "--nodes-max", 10000000);
    uint32_t reports = static_cast<uint32_t>(
        flagValue(argc, argv, "--reports", 2));
    uint32_t repeats = static_cast<uint32_t>(std::max<uint64_t>(
        1, flagValue(argc, argv, "--repeats", 3)));
    std::string json_path = bench::jsonPathFromArgs(argc, argv);
    if (json_path.empty())
        json_path = "BENCH_agg.json";

    bench::banner(
        "Extension: streaming aggregation at fleet line rate",
        "Sharded mergeable sketches riding the fleet hot loop; "
        "decode = channel pseudo-inverse.\nDeterminism = sketch "
        "counters and decoded bits identical across thread counts "
        "and batch/scalar paths.");

    unsigned hw = FleetRunner::hardwareThreads();

    // --- 1. pure ingest, single thread ------------------------------
    // The per-worker protocol verbatim: bump one delta cell per
    // report, flush the delta into the sketch when the block
    // completes. Slots are precomputed (a hash spread over the
    // window, heavier toward the middle) so the measurement is the
    // aggregation cost, not an RNG's.
    const size_t kSpan = 869;       // thresholding span, ref. device
    const size_t kBlock = 4096;     // fleet default block_nodes
    const size_t kStream = 1 << 16; // precomputed slot cycle
    agg::AggConfig icfg;
    agg::CohortSketch ingest_sketch(icfg, kSpan, 1, 0.0,
                                    10.0 / 32.0);
    std::vector<uint32_t> slot_stream(kStream);
    for (size_t i = 0; i < kStream; ++i) {
        uint64_t h = agg::mixHash(i);
        // Sum of three sub-fields concentrates mass mid-window, like
        // a real noise PMF, so the flush sees realistic occupancy.
        slot_stream[i] = static_cast<uint32_t>(
            ((h & 0x3ff) + ((h >> 10) & 0x3ff) + ((h >> 20) & 0x3ff)) %
            kSpan);
    }
    std::vector<uint64_t> delta(kSpan, 0);

    const uint64_t kIngestTarget = 1u << 26; // ~67M reports per pass
    double ingest_best = 0.0;
    for (uint32_t r = 0; r < repeats + 1; ++r) { // first pass = warmup
        ingest_sketch.clear();
        auto t0 = std::chrono::steady_clock::now();
        uint64_t done = 0;
        size_t cursor = 0;
        while (done < kIngestTarget) {
            for (size_t i = 0; i < kBlock; ++i) {
                ++delta[slot_stream[cursor]];
                cursor = (cursor + 1) & (kStream - 1);
            }
            ingest_sketch.ingestDelta(delta.data());
            std::fill(delta.begin(), delta.end(), 0);
            done += kBlock;
        }
        auto t1 = std::chrono::steady_clock::now();
        double s = std::chrono::duration<double>(t1 - t0).count();
        double rate = s > 0.0 ? static_cast<double>(done) / s : 0.0;
        if (r > 0)
            ingest_best = std::max(ingest_best, rate);
    }
    std::printf("\npure ingest, 1 thread: %.3g reports/sec "
                "(span %zu, %zu-report blocks, best of %u; CI floor "
                "2e7)\n",
                ingest_best, kSpan, kBlock, repeats);

    // --- 2. population sweep ----------------------------------------
    std::vector<uint64_t> populations;
    for (uint64_t n : {uint64_t{100000}, uint64_t{1000000},
                       uint64_t{10000000}}) {
        if (n <= nodes_max)
            populations.push_back(n);
    }
    if (populations.empty())
        populations.push_back(nodes_max);

    TextTable table;
    table.setHeader({"nodes", "agg-on rep/s", "overhead", "decode us",
                     "B/node", "raw |err|", "decoded |err|",
                     "fingerprint"});

    struct SweepRow
    {
        uint64_t nodes = 0;
        double on_rate = 0.0;
        double off_rate = 0.0;
        double overhead_raw_pct = 0.0;
        double overhead_pct = 0.0;
        bool below_noise = false;
        double ns_per_decode = 0.0;
        uint64_t sketch_bytes = 0;
        double bytes_per_node = 0.0;
        double raw_err = 0.0;
        double decoded_err = 0.0;
        uint64_t fingerprint = 0;
    };
    std::vector<SweepRow> sweep;
    bool deterministic = true;

    for (uint64_t nodes : populations) {
        SweepRow row;
        row.nodes = nodes;
        // Small populations mean millisecond epochs where scheduler
        // noise swamps best-of-3; scale the repeat count so every
        // sweep point measures a comparable amount of work.
        uint32_t reps = repeats * static_cast<uint32_t>(
            std::max<uint64_t>(1, 1000000 / nodes));
        {
            FleetRunner off_runner(makeConfig(nodes, reports, false));
            row.off_rate = measure(off_runner, hw, reps).best_rate;
        }
        FleetRunner runner(makeConfig(nodes, reports, true));
        MeasuredRun on = measure(runner, hw, reps);
        deterministic = deterministic && on.deterministic;
        row.on_rate = on.best_rate;
        row.fingerprint = on.fingerprint;
        row.overhead_raw_pct = row.off_rate > 0.0
            ? (row.off_rate - row.on_rate) / row.off_rate * 100.0
            : 0.0;
        row.below_noise = row.overhead_raw_pct < 0.0;
        row.overhead_pct = std::max(0.0, row.overhead_raw_pct);

        double decode_s = 0.0, raw = 0.0, dec = 0.0;
        size_t agg_cohorts = 0;
        for (const CohortResult &c : on.report.cohorts) {
            if (!c.agg)
                continue;
            ++agg_cohorts;
            // Decode latency as a microbench (best of 32 on the
            // merged sketch), not the single in-epoch sample: a
            // lone ~50 us timing is too noisy to gate on.
            std::vector<uint64_t> totals = c.agg->sketch.slotTotals();
            double best = c.agg->decode_seconds;
            for (int i = 0; i < 32; ++i) {
                auto d0 = std::chrono::steady_clock::now();
                c.agg->decoder->decode(totals, c.agg->input_value0,
                                       c.agg->delta);
                auto d1 = std::chrono::steady_clock::now();
                best = std::min(
                    best,
                    std::chrono::duration<double>(d1 - d0).count());
            }
            decode_s += best;
            row.sketch_bytes += c.agg->sketch.bytes();
            double truth = c.trueMean();
            raw += std::abs(c.released_stats.mean() - truth);
            dec += std::abs(c.agg->decoded.mean - truth);
        }
        if (agg_cohorts > 0) {
            row.ns_per_decode =
                decode_s * 1e9 / static_cast<double>(agg_cohorts);
            row.raw_err = raw / static_cast<double>(agg_cohorts);
            row.decoded_err = dec / static_cast<double>(agg_cohorts);
        }
        row.bytes_per_node =
            static_cast<double>(row.sketch_bytes) /
            static_cast<double>(nodes);
        sweep.push_back(row);

        char on_s[32], ovh[32], dus[32], bpn[32], rerr[32], derr[32],
            fp[32];
        std::snprintf(on_s, sizeof on_s, "%.3g", row.on_rate);
        std::snprintf(ovh, sizeof ovh, "%.2f%%%s", row.overhead_pct,
                      row.below_noise ? "*" : "");
        std::snprintf(dus, sizeof dus, "%.1f",
                      row.ns_per_decode / 1e3);
        std::snprintf(bpn, sizeof bpn, "%.4f", row.bytes_per_node);
        std::snprintf(rerr, sizeof rerr, "%.5f", row.raw_err);
        std::snprintf(derr, sizeof derr, "%.5f", row.decoded_err);
        std::snprintf(fp, sizeof fp, "%016llx",
                      static_cast<unsigned long long>(
                          row.fingerprint));
        table.addRow({std::to_string(nodes), on_s, ovh, dus, bpn,
                      rerr, derr, fp});
    }
    std::printf("\n2 cohorts (thresholding + resampling) x %u "
                "reports/node, data mean 7.5 on [0, 10], %u threads, "
                "best of %u:\n\n", reports, hw, repeats);
    table.print(std::cout);
    std::printf("\n* = raw overhead reading negative (below the "
                "host's noise floor), clamped to 0.\n'raw |err|' = "
                "|released mean - true mean|; 'decoded |err|' = same "
                "for the channel-inverted\ndecode. The raw mean "
                "carries a systematic clamp/truncation bias; the "
                "decode is\nunbiased but pays inversion variance, so "
                "in noise-dominated regimes the two are\ncomparable "
                "(the biased regime, data pinned at the range edge, "
                "is locked in by the\nAggFleet.BoundaryUnbiasing "
                "regression test). Sketch memory is constant in the\n"
                "population, so B/node falls as 1/n.\n");

    // --- 3. determinism across thread counts and paths --------------
    {
        FleetRunner runner(
            makeConfig(populations.front(), reports, true));
        uint64_t fp1 = runner.run(1).fingerprint();
        uint64_t fp2 = runner.run(2).fingerprint();
        uint64_t fph = runner.run(hw).fingerprint();
        FleetRunner::forceScalarBlocks(true);
        uint64_t fps = runner.run(hw).fingerprint();
        FleetRunner::forceScalarBlocks(false);
        bool same = fp1 == fp2 && fp1 == fph && fp1 == fps;
        deterministic = deterministic && same;
        std::printf("\nagg fingerprints at 1/2/%u threads + forced "
                    "scalar: %016llx %016llx %016llx %016llx -> %s\n",
                    hw, static_cast<unsigned long long>(fp1),
                    static_cast<unsigned long long>(fp2),
                    static_cast<unsigned long long>(fph),
                    static_cast<unsigned long long>(fps),
                    same ? "PASS" : "FAIL");
    }

    bench::JsonWriter json;
    json.beginObject();
    json.field("bench", "streaming aggregation");
    json.field("reports_per_node", reports);
    json.field("cohorts", uint64_t{2});
    json.field("hardware_threads", hw);
    json.field("measured_epochs_per_point", uint64_t{repeats});
    json.field("ingest_span", static_cast<uint64_t>(kSpan));
    json.field("ingest_block_reports", static_cast<uint64_t>(kBlock));
    json.field("ingest_reports_per_second_1t", ingest_best);
    json.field("bit_exact_determinism", deterministic);
    json.beginArray("sweep");
    for (const SweepRow &row : sweep) {
        json.beginObject();
        json.field("nodes", row.nodes);
        json.field("reports_per_second", row.on_rate);
        json.field("agg_off_reports_per_second", row.off_rate);
        json.field("agg_overhead_pct", row.overhead_pct);
        json.field("agg_overhead_raw_pct", row.overhead_raw_pct);
        json.field("agg_overhead_below_noise", row.below_noise);
        json.field("ns_per_decode", row.ns_per_decode);
        json.field("sketch_bytes", row.sketch_bytes);
        json.field("sketch_bytes_per_node", row.bytes_per_node);
        json.field("raw_mean_abs_error", row.raw_err);
        json.field("decoded_mean_abs_error", row.decoded_err);
        char fp[32];
        std::snprintf(fp, sizeof fp, "%016llx",
                      static_cast<unsigned long long>(
                          row.fingerprint));
        json.field("fingerprint", fp);
        json.endObject();
    }
    json.endArray();
    json.endObject();
    if (json.writeFile(json_path))
        std::printf("\nJSON written to %s\n", json_path.c_str());

    if (!deterministic) {
        std::printf("\nFAIL: sketch state or decoded estimates "
                    "differ across epochs, thread counts or "
                    "batch/scalar paths.\n");
        return 1;
    }
    std::printf("\nTakeaway: the collector's state is integer "
                "counters end to end, so sharding is free of both "
                "races and rounding -- the decode sees the same bits "
                "whatever the thread count, and the channel "
                "inversion trades the raw stream's systematic clamp "
                "bias for plain 1/sqrt(n) variance.\n");
    return 0;
}
