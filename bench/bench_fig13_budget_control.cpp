/**
 * @file
 * Reproduces Fig. 13: effectiveness of privacy budget control against
 * an averaging adversary. Relative error of the adversary's estimate
 * versus the number of data requests, with no budget and with two
 * finite budgets (eps = 0.5 per the paper).
 */

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "core/budget.h"
#include "sim/adversary.h"

namespace {

using namespace ulpdp;

BudgetController
makeController(const FxpMechanismParams &p, double budget,
               uint64_t seed)
{
    ThresholdCalculator calc(p);
    BudgetControllerConfig cfg;
    cfg.initial_budget = budget;
    cfg.kind = RangeControl::Thresholding;
    cfg.segments = LossSegments::compute(
        calc, RangeControl::Thresholding, {1.5, 2.0});
    FxpMechanismParams seeded = p;
    seeded.seed = seed;
    return BudgetController(seeded, cfg);
}

} // anonymous namespace

int
main()
{
    bench::banner("Fig. 13: budget control vs an averaging adversary",
                  "Sensor range [0, 10], true reading 7.0, "
                  "eps = 0.5 per report; no budget vs B = 20 vs "
                  "B = 100.");

    FxpMechanismParams p;
    p.range = SensorRange(0.0, 10.0);
    p.epsilon = 0.5;
    p.uniform_bits = 17;
    p.output_bits = 14;
    p.delta = 10.0 / 32.0;

    const double truth = 7.0;
    const int kRuns = 40; // independent runs averaged per curve
    std::vector<uint64_t> checkpoints{1,    3,    10,    30,   100,
                                      300,  1000, 3000,  10000,
                                      30000, 100000};

    auto averaged = [&](double budget, uint64_t seed_base) {
        std::vector<double> err(checkpoints.size(), 0.0);
        uint64_t cache_hits = 0;
        for (int r = 0; r < kRuns; ++r) {
            BudgetController ctrl =
                makeController(p, budget, seed_base + r);
            auto curve = AveragingAdversary::attack(ctrl, truth,
                                                    checkpoints);
            for (size_t i = 0; i < curve.size(); ++i)
                err[i] += curve[i].relative_error;
            cache_hits += curve.back().cache_hits;
        }
        for (auto &e : err)
            e /= kRuns;
        return std::make_pair(err, cache_hits / kRuns);
    };

    auto [e_none, h_none] = averaged(1e12, 100);
    auto [e_100, h_100] = averaged(100.0, 200);
    auto [e_20, h_20] = averaged(20.0, 300);

    TextTable table;
    table.setHeader({"requests", "rel.err (no budget)",
                     "rel.err (B=100)", "rel.err (B=20)"});
    for (size_t i = 0; i < checkpoints.size(); ++i) {
        table.addRow({
            std::to_string(checkpoints[i]),
            TextTable::fmtPercent(e_none[i], 2),
            TextTable::fmtPercent(e_100[i], 2),
            TextTable::fmtPercent(e_20[i], 2),
        });
    }
    table.print(std::cout);
    std::printf("\navg cache hits at 100000 requests: none=%llu "
                "B=100: %llu  B=20: %llu\n",
                static_cast<unsigned long long>(h_none),
                static_cast<unsigned long long>(h_100),
                static_cast<unsigned long long>(h_20));

    std::printf("\nExpected shape (paper Fig. 13): without budget "
                "control the error keeps falling toward zero; with a "
                "finite budget the device switches to cache replay "
                "and the error flattens at a floor set by the budget "
                "(smaller budget -> higher floor).\n");
    return 0;
}
