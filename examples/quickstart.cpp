/**
 * @file
 * Quickstart: noise one sensor reading under local differential
 * privacy on simulated ultra-low-power fixed-point hardware, and
 * verify -- exactly, not statistically -- that the configuration is
 * LDP.
 *
 * Build & run:  ./examples/quickstart
 */

#include <cstdio>

#include "core/privacy_loss.h"
#include "core/resampling_mechanism.h"
#include "core/threshold_calc.h"

int
main()
{
    using namespace ulpdp;

    // A temperature sensor reporting in [-20, 60] degrees C, asking
    // for eps = 0.5 local DP with worst-case loss capped at 2 * eps.
    FxpMechanismParams params;
    params.range = SensorRange(-20.0, 60.0);
    params.epsilon = 0.5;
    params.uniform_bits = 17;         // URNG width of the RNG pipeline
    params.output_bits = 14;          // RNG output word
    params.delta = params.range.length() / 32.0; // quantization step

    // 1. Pick the resampling window for the target loss bound. The
    //    exact search accounts for every quantization artifact of the
    //    fixed-point RNG (Section III-B of the paper).
    ThresholdCalculator calc(params);
    int64_t threshold = calc.exactIndex(RangeControl::Resampling, 2.0);
    std::printf("resampling window: [m - %.2f, M + %.2f]\n",
                threshold * params.resolvedDelta(),
                threshold * params.resolvedDelta());

    // 2. Prove the mechanism is LDP before deploying it.
    ResamplingOutputModel model(calc.pmf(), calc.span(), threshold);
    LossReport report = PrivacyLossAnalyzer::analyze(model);
    std::printf("exact worst-case privacy loss: %.4f nats "
                "(bound %.4f)  ->  %s\n",
                report.worst_case_loss, 2.0 * params.epsilon,
                report.bounded ? "eps-LDP GUARANTEED" : "NOT LDP");

    // 3. Noise readings. Each release leaks at most the loss above.
    ResamplingMechanism mechanism(params, threshold);
    double true_reading = 23.4;
    for (int i = 0; i < 5; ++i) {
        NoisedReport rep = mechanism.noise(true_reading);
        std::printf("report %d: true %.1f -> released %8.3f "
                    "(%llu RNG draw%s)\n",
                    i, true_reading, rep.value,
                    static_cast<unsigned long long>(rep.samples_drawn),
                    rep.samples_drawn == 1 ? "" : "s");
    }

    // 4. Contrast: the naive fixed-point baseline is NOT private.
    NaiveOutputModel naive(calc.pmf(), calc.span());
    LossReport naive_report = PrivacyLossAnalyzer::analyze(naive);
    std::printf("\nnaive FxP baseline worst-case loss: %s "
                "(%llu distinguishing outputs) -- never ship this.\n",
                naive_report.bounded ? "bounded" : "INFINITE",
                static_cast<unsigned long long>(
                    naive_report.infinite_outputs));
    return 0;
}
