/**
 * @file
 * Wearable heart monitor: a DP-Box device noises every blood-pressure
 * reading before untrusted firmware can see it, while a cloud analyst
 * recovers accurate population statistics from the noised reports.
 *
 * Demonstrates the full hardware flow: sizing the clamp window with
 * the exact threshold search, secure-boot initialization, runtime
 * configuration over the 3-bit command port, per-reading noising
 * latency, and analyst-side post-processing (including debiasing the
 * variance estimate for the known noise power).
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/threshold_calc.h"
#include "data/generators.h"
#include "dpbox/driver.h"
#include "query/query.h"

int
main()
{
    using namespace ulpdp;

    // One synthetic patient population (Table I: Statlog heart).
    Dataset patients = makeStatlogHeart();
    std::printf("population: %zu patients, blood pressure range "
                "[%g, %g] mm Hg\n",
                patients.size(), patients.range.lo, patients.range.hi);

    // Size the clamp window for a 2*eps loss bound on exactly the
    // grid the device uses (1 mm Hg LSB).
    const double epsilon = 0.5;
    FxpMechanismParams analysis;
    analysis.range = patients.range;
    analysis.epsilon = epsilon;
    analysis.uniform_bits = 17;
    analysis.output_bits = 14;
    analysis.delta = 1.0; // = device LSB below
    ThresholdCalculator calc(analysis);
    int64_t window = calc.exactIndex(RangeControl::Thresholding, 2.0);
    std::printf("clamp window from exact analysis: [m - %lld, "
                "M + %lld] mm Hg (loss <= %.2f nats)\n",
                static_cast<long long>(window),
                static_cast<long long>(window), 2.0 * epsilon);

    // Each wearable carries a DP-Box configured like silicon would
    // be: thresholding mode (single-cycle, deterministic latency).
    DpBoxConfig cfg;
    cfg.frac_bits = 0; // LSB = 1 mm Hg
    cfg.word_bits = 20;
    cfg.uniform_bits = 17;
    cfg.threshold_index = window;
    cfg.thresholding = true;

    // Every patient's device releases one noised reading.
    std::vector<double> reports;
    uint64_t total_cycles = 0;
    for (size_t i = 0; i < patients.size(); ++i) {
        DpBoxConfig dev_cfg = cfg;
        dev_cfg.seed = 1000 + i; // per-device entropy
        DpBoxDriver device(dev_cfg);
        device.initialize(/*budget=*/5.0, /*replenish_period=*/0);
        device.configure(epsilon, patients.range);

        DpBoxResult r = device.noise(patients.values[i]);
        reports.push_back(r.value);
        total_cycles += r.latency_cycles;
    }
    std::printf("noised %zu readings, %.2f cycles per reading "
                "(thresholding: constant)\n",
                reports.size(),
                static_cast<double>(total_cycles) / reports.size());

    // The analyst post-processes the noised reports; post-processing
    // cannot leak more (Section II-B). The mean is unbiased as-is;
    // the variance estimate subtracts the known noise power
    // 2 * lambda^2 (the analyst knows eps and the range, so it knows
    // the noise distribution).
    MeanQuery mean;
    VarianceQuery variance;
    CountAboveQuery hypertensive(140.0);

    double lambda = patients.range.length() / epsilon;
    double noise_var = 2.0 * lambda * lambda;
    double var_est = variance.evaluate(reports) - noise_var;
    if (var_est < 0.0)
        var_est = 0.0;

    std::printf("\n%-34s %10s %10s\n", "query", "true", "from LDP");
    std::printf("%-34s %10.2f %10.2f\n", "mean blood pressure",
                mean.evaluate(patients.values),
                mean.evaluate(reports));
    std::printf("%-34s %10.2f %10.2f\n",
                "variance (debiased by 2*lambda^2)",
                variance.evaluate(patients.values), var_est);
    std::printf("%-34s %10.0f %10.0f\n",
                "patients with BP >= 140 (biased)",
                hypertensive.evaluate(patients.values),
                hypertensive.evaluate(reports));

    std::printf("\nNotes: with n = %zu patients the noise on the "
                "mean is lambda * sqrt(2/n) = %.1f mm Hg; counting "
                "on noised values stays biased (Table V of the paper "
                "shows the same).\n",
                patients.size(),
                lambda * std::sqrt(2.0 /
                                   static_cast<double>(
                                       patients.size())));
    std::printf("No raw blood pressure ever left a device; each "
                "patient's report is eps-LDP on its own.\n");
    return 0;
}
