/**
 * @file
 * Building occupancy survey with categorical privacy: badge readers
 * ask each employee's presence sensor a yes/no question ("in the
 * office?"). Each sensor answers through the DP-Box datapath in
 * randomized-response mode (Section VI-E: threshold zero), so every
 * individual answer is plausibly deniable, yet facilities can
 * estimate the true occupancy accurately -- and more accurately the
 * larger the building.
 */

#include <cmath>
#include <cstdio>
#include <random>

#include "core/randomized_response.h"

int
main()
{
    using namespace ulpdp;

    // Binary category encoded on [0, 1]; eps = 1 randomized response.
    FxpMechanismParams params;
    params.range = SensorRange(0.0, 1.0);
    params.epsilon = 1.0;
    params.uniform_bits = 17;
    params.output_bits = 14;
    params.delta = 1.0 / 32.0;

    RandomizedResponse rr(params);
    std::printf("randomized response via DP-Box, eps = %.1f\n",
                params.epsilon);
    std::printf("  probability of flipping an answer: %.4f\n",
                rr.flipProbability());
    std::printf("  exact privacy loss of one answer:  %.4f nats "
                "(<= eps)\n\n", rr.exactLoss());

    std::printf("%10s %12s %12s %12s %10s\n", "employees",
                "truly in", "reported", "estimated", "error");

    std::mt19937_64 rng(42);
    for (size_t n : {50u, 200u, 1000u, 5000u, 20000u}) {
        const double true_rate = 0.62;
        std::bernoulli_distribution present(true_rate);

        size_t truly_in = 0;
        size_t reported_in = 0;
        for (size_t i = 0; i < n; ++i) {
            double truth = present(rng) ? 1.0 : 0.0;
            truly_in += truth == 1.0;
            // The only thing that leaves the sensor:
            double answer = rr.noise(truth).value;
            reported_in += answer == 1.0;
        }

        double est_rate = rr.estimateProportion(
            static_cast<double>(reported_in) /
            static_cast<double>(n));
        double est_count = est_rate * static_cast<double>(n);
        std::printf("%10zu %12zu %12zu %12.0f %9.1f%%\n", n,
                    truly_in, reported_in, est_count,
                    100.0 * std::abs(est_count -
                                     static_cast<double>(truly_in)) /
                        static_cast<double>(n));
    }

    std::printf("\nEvery individual can deny their answer (it flips "
                "with probability %.0f%%), yet the aggregate "
                "estimate tightens as 1/sqrt(n).\n",
                100.0 * rr.flipProbability());
    return 0;
}
