/**
 * @file
 * Command-line provisioning tool: turn a privacy intent into a
 * verified DP-Box manifest.
 *
 * Usage:
 *   provision_tool [lo hi epsilon loss_multiple kind [budget]]
 *     kind: "threshold" or "resample"
 *
 * With no arguments, provisions the Statlog heart-rate example.
 * Exit status is non-zero if no configuration satisfies the intent,
 * so the tool slots into device-manufacturing pipelines as a gate.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "dpbox/provisioning.h"

int
main(int argc, char **argv)
{
    using namespace ulpdp;

    PrivacyIntent intent;
    intent.range = SensorRange(94.0, 200.0);
    intent.epsilon = 0.5;
    intent.loss_multiple = 2.0;
    intent.kind = RangeControl::Thresholding;

    if (argc >= 6) {
        double lo = std::atof(argv[1]);
        double hi = std::atof(argv[2]);
        if (!(hi > lo)) {
            std::fprintf(stderr, "error: hi must exceed lo\n");
            return 2;
        }
        intent.range = SensorRange(lo, hi);
        intent.epsilon = std::atof(argv[3]);
        intent.loss_multiple = std::atof(argv[4]);
        intent.kind = std::strcmp(argv[5], "resample") == 0
            ? RangeControl::Resampling
            : RangeControl::Thresholding;
        if (argc >= 7)
            intent.budget = std::atof(argv[6]);
    } else if (argc != 1) {
        std::fprintf(stderr,
                     "usage: %s [lo hi epsilon loss_multiple "
                     "threshold|resample [budget]]\n", argv[0]);
        return 2;
    }

    try {
        ProvisioningPlan plan = Provisioner::plan(intent);
        std::printf("%s", plan.toText().c_str());
        bool ok = Provisioner::verify(plan);
        std::printf("\nre-verification: %s\n",
                    ok ? "PASS (exact loss within bound)" : "FAIL");
        return ok ? 0 : 1;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "provisioning failed: %s\n", e.what());
        return 1;
    }
}
