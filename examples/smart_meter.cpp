/**
 * @file
 * Smart electricity meter: a utility company polls one household's
 * meter repeatedly. Without budget control, averaging the noised
 * replies reveals the true consumption; the Algorithm 1 budget
 * controller (output-adaptive charging + cache replay + periodic
 * replenishment) caps what any number of requests can learn per
 * billing period.
 */

#include <cstdio>

#include "core/budget.h"
#include "sim/adversary.h"

int
main()
{
    using namespace ulpdp;

    // Household power draw in [0, 10] kW; one reading per request.
    FxpMechanismParams params;
    params.range = SensorRange(0.0, 10.0);
    params.epsilon = 0.5;
    params.uniform_bits = 17;
    params.output_bits = 14;
    params.delta = params.range.length() / 32.0;

    // Segment the output range (Fig. 8): reports landing near the
    // center are charged less than reports near the clamp boundary.
    ThresholdCalculator calc(params);
    BudgetControllerConfig cfg;
    cfg.kind = RangeControl::Thresholding;
    cfg.segments = LossSegments::compute(
        calc, RangeControl::Thresholding, {1.5, 2.0});
    cfg.initial_budget = 25.0;
    cfg.replenish_period = 1u << 20; // one "billing period" of ticks

    std::printf("loss segments (output extension -> charged loss):\n");
    for (const auto &seg : cfg.segments) {
        std::printf("  within M + %6.2f kW  ->  %.4f nats\n",
                    seg.threshold_index * params.resolvedDelta(),
                    seg.loss);
    }

    BudgetController meter(params, cfg);
    const double true_draw = 7.3;

    // A curious utility (or anyone on the wire) polls aggressively.
    auto curve = AveragingAdversary::attack(
        meter, true_draw, {10, 100, 1000, 10000, 100000});
    std::printf("\naveraging adversary against the budgeted meter "
                "(true draw %.1f kW):\n", true_draw);
    std::printf("%10s %14s %14s %12s\n", "requests", "estimate",
                "rel. error", "cache hits");
    for (const auto &pt : curve) {
        std::printf("%10llu %14.3f %13.2f%% %12llu\n",
                    static_cast<unsigned long long>(pt.requests),
                    pt.estimate, 100.0 * pt.relative_error,
                    static_cast<unsigned long long>(pt.cache_hits));
    }
    std::printf("\nbudget left: %.3f of %.1f nats; %llu fresh "
                "reports ever released\n",
                meter.remainingBudget(), cfg.initial_budget,
                static_cast<unsigned long long>(meter.freshReports()));

    // Next billing period: the budget replenishes and fresh (still
    // eps-LDP) reports flow again.
    meter.advanceTime(cfg.replenish_period);
    BudgetResponse fresh = meter.request(true_draw);
    std::printf("\nafter replenishment: fresh report %.3f kW "
                "(charged %.4f nats, from_cache=%d)\n",
                fresh.value, fresh.charged, fresh.from_cache);
    return 0;
}
