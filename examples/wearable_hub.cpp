/**
 * @file
 * Wearable hub: the full deployment story on one device.
 *
 *  - Three physical sensors behind ADC front-ends (heart rate,
 *    skin temperature, activity class).
 *  - Privacy intents provisioned into verified device plans
 *    (exact-analysis thresholds, budget segments).
 *  - Numeric streams noised with constant-time resampling (no
 *    timing channel) while charging one shared budget pool.
 *  - The categorical stream answered with k-ary randomized
 *    response.
 *  - A day of simulated operation with periodic budget
 *    replenishment, and the analyst's view at the end.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/stats.h"
#include "core/constant_time.h"
#include "core/kary_randomized_response.h"
#include "core/shared_budget.h"
#include "data/timeseries.h"
#include "dpbox/provisioning.h"
#include "sim/sensor_adc.h"

int
main()
{
    using namespace ulpdp;
    setLoggingEnabled(false); // grid-snap warnings are expected here

    // --- Provision the two numeric sensors -----------------------
    PrivacyIntent hr_intent;
    hr_intent.range = SensorRange(40.0, 200.0); // bpm
    hr_intent.epsilon = 0.5;
    hr_intent.loss_multiple = 2.0;
    hr_intent.kind = RangeControl::Resampling;

    PrivacyIntent temp_intent = hr_intent;
    temp_intent.range = SensorRange(30.0, 42.0); // deg C

    ProvisioningPlan hr_plan = Provisioner::plan(hr_intent);
    ProvisioningPlan temp_plan = Provisioner::plan(temp_intent);
    std::printf("%s\n%s\n", hr_plan.toText().c_str(),
                temp_plan.toText().c_str());

    // --- Build the noising paths ---------------------------------
    auto to_params = [](const ProvisioningPlan &plan, uint64_t seed) {
        FxpMechanismParams p;
        p.range = plan.range;
        p.epsilon = plan.effective_epsilon;
        p.uniform_bits = plan.device.uniform_bits;
        p.output_bits = 16;
        p.delta = std::ldexp(1.0, -plan.device.frac_bits);
        p.seed = seed;
        return p;
    };

    // Constant-time resampling: K = 4 draws per report, so latency
    // and energy do not leak the reading.
    ConstantTimeResamplingMechanism hr_mech(
        to_params(hr_plan, 11), hr_plan.device.threshold_index, 4);
    ConstantTimeResamplingMechanism temp_mech(
        to_params(temp_plan, 12), temp_plan.device.threshold_index,
        4);

    // One shared pool: correlating HR and temperature streams still
    // faces a single composition bound.
    SharedBudgetPool pool(60.0, /*replenish every*/ 1440);

    // Activity classifier output: 4 categories through k-ary RR.
    KaryRandomizedResponse activity_rr(4, 1.0, 20, 13);

    // --- Simulate a day (one sample per simulated minute) --------
    SensorAdc hr_adc(hr_intent.range, 10);
    SensorAdc temp_adc(temp_intent.range, 12);
    const size_t kMinutes = 1440 * 3; // three replenishment epochs

    auto hr_true = timeseries::meanRevertingWalk(
        kMinutes, hr_intent.range, 72.0, 0.05, 2.0, 21);
    auto temp_true = timeseries::diurnal(
        kMinutes, temp_intent.range, 36.5, 0.6, 1440, 0.05, 22);
    auto act_true = timeseries::piecewiseLevels(
        kMinutes, SensorRange(0.0, 3.0), 4, 0.01, 23);

    RunningStats hr_reports;
    RunningStats temp_reports;
    std::vector<uint64_t> act_observed(4, 0);
    std::vector<double> act_true_counts(4, 0.0);
    double charged = 0.0;
    uint64_t skipped = 0;

    for (size_t t = 0; t < kMinutes; ++t) {
        pool.advanceTime(1);
        // Numeric sensors report once per minute, charging the pool
        // with the per-report loss the plans proved.
        if (pool.tryCharge(hr_plan.proven_loss)) {
            hr_reports.add(
                hr_mech.noise(hr_adc.sample(hr_true[t])).value);
            charged += hr_plan.proven_loss;
        } else {
            ++skipped;
        }
        if (pool.tryCharge(temp_plan.proven_loss)) {
            temp_reports.add(
                temp_mech.noise(temp_adc.sample(temp_true[t])).value);
            charged += temp_plan.proven_loss;
        } else {
            ++skipped;
        }
        // Activity reports are cheap (one RR answer, eps = 1), and
        // here metered on the same pool.
        if (pool.tryCharge(activity_rr.exactLoss())) {
            int cat = static_cast<int>(act_true[t]);
            act_true_counts[static_cast<size_t>(cat)] += 1.0;
            ++act_observed[static_cast<size_t>(
                activity_rr.respond(cat))];
            charged += activity_rr.exactLoss();
        } else {
            ++skipped;
        }
    }

    // --- Analyst's view -------------------------------------------
    double hr_truth = batch::mean(hr_true);
    double temp_truth = batch::mean(temp_true);
    std::printf("analyst's day summary (from %zu noised reports, "
                "%llu requests unanswered after pool drained):\n",
                static_cast<size_t>(hr_reports.count() +
                                    temp_reports.count()),
                static_cast<unsigned long long>(skipped));
    auto expect_err = [](const ProvisioningPlan &plan, size_t n) {
        double lambda = plan.range.length() / plan.effective_epsilon;
        return lambda * std::sqrt(2.0 / std::max<size_t>(n, 1));
    };
    std::printf("  mean heart rate:   true %6.2f   estimated %6.2f "
                "bpm   (noise floor +-%.1f at %zu reports)\n",
                hr_truth, hr_reports.mean(),
                expect_err(hr_plan, hr_reports.count()),
                hr_reports.count());
    std::printf("  mean temperature:  true %6.2f   estimated %6.2f "
                "C     (noise floor +-%.1f at %zu reports)\n",
                temp_truth, temp_reports.mean(),
                expect_err(temp_plan, temp_reports.count()),
                temp_reports.count());
    std::printf("  (the budget pool deliberately caps how many fresh "
                "reports exist -- coarse\n   estimates are the "
                "privacy guarantee working, not a bug)\n");

    auto act_est = activity_rr.estimateCounts(act_observed);
    std::printf("  activity minutes (true -> estimated):\n");
    const char *names[4] = {"resting", "walking", "running",
                            "cycling"};
    double answered = 0.0;
    for (double c : act_true_counts)
        answered += c;
    for (size_t c = 0; c < 4; ++c) {
        std::printf("    %-8s %6.0f -> %6.0f\n", names[c],
                    act_true_counts[c], act_est[c]);
    }

    std::printf("\nprivacy ledger: %.1f nats charged across ALL "
                "streams over %zu minutes (pool %.0f nats per "
                "1440-minute epoch).\n",
                charged, kMinutes, pool.initialBudget());
    std::printf("Every released value was noised on-device; latency "
                "was a constant %d samples per numeric report (no "
                "timing channel).\n", hr_mech.batchSize());
    return 0;
}
