# Empty dependencies file for bench_abl_constant_time.
# This may be replaced when dependencies are built.
