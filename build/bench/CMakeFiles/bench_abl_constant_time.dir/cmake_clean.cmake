file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_constant_time.dir/bench_abl_constant_time.cpp.o"
  "CMakeFiles/bench_abl_constant_time.dir/bench_abl_constant_time.cpp.o.d"
  "bench_abl_constant_time"
  "bench_abl_constant_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_constant_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
