file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_float.dir/bench_ext_float.cpp.o"
  "CMakeFiles/bench_ext_float.dir/bench_ext_float.cpp.o.d"
  "bench_ext_float"
  "bench_ext_float.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_float.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
