# Empty dependencies file for bench_ext_float.
# This may be replaced when dependencies are built.
