# Empty compiler generated dependencies file for bench_sec5_hw_variants.
# This may be replaced when dependencies are built.
