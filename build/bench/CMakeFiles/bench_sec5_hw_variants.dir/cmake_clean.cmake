file(REMOVE_RECURSE
  "CMakeFiles/bench_sec5_hw_variants.dir/bench_sec5_hw_variants.cpp.o"
  "CMakeFiles/bench_sec5_hw_variants.dir/bench_sec5_hw_variants.cpp.o.d"
  "bench_sec5_hw_variants"
  "bench_sec5_hw_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec5_hw_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
