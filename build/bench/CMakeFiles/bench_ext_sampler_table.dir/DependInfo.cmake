
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ext_sampler_table.cpp" "bench/CMakeFiles/bench_ext_sampler_table.dir/bench_ext_sampler_table.cpp.o" "gcc" "bench/CMakeFiles/bench_ext_sampler_table.dir/bench_ext_sampler_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/ulpdp_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ulpdp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dpbox/CMakeFiles/ulpdp_dpbox.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/ulpdp_query.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/ulpdp_data.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/ulpdp_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ulpdp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/ulpdp_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/fixed/CMakeFiles/ulpdp_fixed.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ulpdp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
