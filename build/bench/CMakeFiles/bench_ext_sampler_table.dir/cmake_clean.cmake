file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_sampler_table.dir/bench_ext_sampler_table.cpp.o"
  "CMakeFiles/bench_ext_sampler_table.dir/bench_ext_sampler_table.cpp.o.d"
  "bench_ext_sampler_table"
  "bench_ext_sampler_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_sampler_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
