# Empty dependencies file for bench_ext_sampler_table.
# This may be replaced when dependencies are built.
