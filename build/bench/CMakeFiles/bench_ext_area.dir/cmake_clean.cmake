file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_area.dir/bench_ext_area.cpp.o"
  "CMakeFiles/bench_ext_area.dir/bench_ext_area.cpp.o.d"
  "bench_ext_area"
  "bench_ext_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
