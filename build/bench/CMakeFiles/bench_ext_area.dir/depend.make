# Empty dependencies file for bench_ext_area.
# This may be replaced when dependencies are built.
