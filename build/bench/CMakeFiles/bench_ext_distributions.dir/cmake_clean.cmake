file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_distributions.dir/bench_ext_distributions.cpp.o"
  "CMakeFiles/bench_ext_distributions.dir/bench_ext_distributions.cpp.o.d"
  "bench_ext_distributions"
  "bench_ext_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
