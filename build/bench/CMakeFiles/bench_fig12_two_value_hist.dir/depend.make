# Empty dependencies file for bench_fig12_two_value_hist.
# This may be replaced when dependencies are built.
