file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_two_value_hist.dir/bench_fig12_two_value_hist.cpp.o"
  "CMakeFiles/bench_fig12_two_value_hist.dir/bench_fig12_two_value_hist.cpp.o.d"
  "bench_fig12_two_value_hist"
  "bench_fig12_two_value_hist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_two_value_hist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
