file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_loss_segments.dir/bench_fig08_loss_segments.cpp.o"
  "CMakeFiles/bench_fig08_loss_segments.dir/bench_fig08_loss_segments.cpp.o.d"
  "bench_fig08_loss_segments"
  "bench_fig08_loss_segments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_loss_segments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
