# Empty compiler generated dependencies file for bench_fig08_loss_segments.
# This may be replaced when dependencies are built.
