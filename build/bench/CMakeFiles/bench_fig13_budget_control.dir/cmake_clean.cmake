file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_budget_control.dir/bench_fig13_budget_control.cpp.o"
  "CMakeFiles/bench_fig13_budget_control.dir/bench_fig13_budget_control.cpp.o.d"
  "bench_fig13_budget_control"
  "bench_fig13_budget_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_budget_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
