# Empty compiler generated dependencies file for bench_fig13_budget_control.
# This may be replaced when dependencies are built.
