# Empty compiler generated dependencies file for bench_fig14_randomized_response.
# This may be replaced when dependencies are built.
