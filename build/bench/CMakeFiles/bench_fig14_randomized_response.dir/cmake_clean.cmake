file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_randomized_response.dir/bench_fig14_randomized_response.cpp.o"
  "CMakeFiles/bench_fig14_randomized_response.dir/bench_fig14_randomized_response.cpp.o.d"
  "bench_fig14_randomized_response"
  "bench_fig14_randomized_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_randomized_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
