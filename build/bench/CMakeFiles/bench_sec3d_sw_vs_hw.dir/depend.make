# Empty dependencies file for bench_sec3d_sw_vs_hw.
# This may be replaced when dependencies are built.
