file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_utility_count.dir/bench_table5_utility_count.cpp.o"
  "CMakeFiles/bench_table5_utility_count.dir/bench_table5_utility_count.cpp.o.d"
  "bench_table5_utility_count"
  "bench_table5_utility_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_utility_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
