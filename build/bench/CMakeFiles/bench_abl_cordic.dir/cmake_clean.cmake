file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_cordic.dir/bench_abl_cordic.cpp.o"
  "CMakeFiles/bench_abl_cordic.dir/bench_abl_cordic.cpp.o.d"
  "bench_abl_cordic"
  "bench_abl_cordic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_cordic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
