# Empty dependencies file for bench_abl_cordic.
# This may be replaced when dependencies are built.
