# Empty dependencies file for bench_ext_kary_rr.
# This may be replaced when dependencies are built.
