file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_kary_rr.dir/bench_ext_kary_rr.cpp.o"
  "CMakeFiles/bench_ext_kary_rr.dir/bench_ext_kary_rr.cpp.o.d"
  "bench_ext_kary_rr"
  "bench_ext_kary_rr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_kary_rr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
