file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_utility_variance.dir/bench_table4_utility_variance.cpp.o"
  "CMakeFiles/bench_table4_utility_variance.dir/bench_table4_utility_variance.cpp.o.d"
  "bench_table4_utility_variance"
  "bench_table4_utility_variance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_utility_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
