# Empty dependencies file for bench_table4_utility_variance.
# This may be replaced when dependencies are built.
