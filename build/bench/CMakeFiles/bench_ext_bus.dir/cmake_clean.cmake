file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_bus.dir/bench_ext_bus.cpp.o"
  "CMakeFiles/bench_ext_bus.dir/bench_ext_bus.cpp.o.d"
  "bench_ext_bus"
  "bench_ext_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
