# Empty dependencies file for bench_fig15_mae_vs_size.
# This may be replaced when dependencies are built.
