file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_histogram.dir/bench_ext_histogram.cpp.o"
  "CMakeFiles/bench_ext_histogram.dir/bench_ext_histogram.cpp.o.d"
  "bench_ext_histogram"
  "bench_ext_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
