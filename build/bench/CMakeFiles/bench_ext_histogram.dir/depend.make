# Empty dependencies file for bench_ext_histogram.
# This may be replaced when dependencies are built.
