# Empty compiler generated dependencies file for bench_ext_shared_budget.
# This may be replaced when dependencies are built.
