file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_rng_distribution.dir/bench_fig04_rng_distribution.cpp.o"
  "CMakeFiles/bench_fig04_rng_distribution.dir/bench_fig04_rng_distribution.cpp.o.d"
  "bench_fig04_rng_distribution"
  "bench_fig04_rng_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_rng_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
