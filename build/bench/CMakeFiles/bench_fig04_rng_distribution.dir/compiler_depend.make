# Empty compiler generated dependencies file for bench_fig04_rng_distribution.
# This may be replaced when dependencies are built.
