# Empty dependencies file for bench_fig06_07_output_dists.
# This may be replaced when dependencies are built.
