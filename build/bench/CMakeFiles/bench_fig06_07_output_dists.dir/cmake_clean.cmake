file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_07_output_dists.dir/bench_fig06_07_output_dists.cpp.o"
  "CMakeFiles/bench_fig06_07_output_dists.dir/bench_fig06_07_output_dists.cpp.o.d"
  "bench_fig06_07_output_dists"
  "bench_fig06_07_output_dists.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_07_output_dists.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
