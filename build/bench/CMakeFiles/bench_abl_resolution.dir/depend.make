# Empty dependencies file for bench_abl_resolution.
# This may be replaced when dependencies are built.
