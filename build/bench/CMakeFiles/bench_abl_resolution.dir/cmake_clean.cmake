file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_resolution.dir/bench_abl_resolution.cpp.o"
  "CMakeFiles/bench_abl_resolution.dir/bench_abl_resolution.cpp.o.d"
  "bench_abl_resolution"
  "bench_abl_resolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_resolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
