# Empty dependencies file for bench_abl_loss_bound.
# This may be replaced when dependencies are built.
