file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_loss_bound.dir/bench_abl_loss_bound.cpp.o"
  "CMakeFiles/bench_abl_loss_bound.dir/bench_abl_loss_bound.cpp.o.d"
  "bench_abl_loss_bound"
  "bench_abl_loss_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_loss_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
