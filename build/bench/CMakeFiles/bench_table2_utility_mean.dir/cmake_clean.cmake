file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_utility_mean.dir/bench_table2_utility_mean.cpp.o"
  "CMakeFiles/bench_table2_utility_mean.dir/bench_table2_utility_mean.cpp.o.d"
  "bench_table2_utility_mean"
  "bench_table2_utility_mean.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_utility_mean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
