file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_utility_median.dir/bench_table3_utility_median.cpp.o"
  "CMakeFiles/bench_table3_utility_median.dir/bench_table3_utility_median.cpp.o.d"
  "bench_table3_utility_median"
  "bench_table3_utility_median.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_utility_median.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
