# Empty compiler generated dependencies file for bench_table3_utility_median.
# This may be replaced when dependencies are built.
