# Empty dependencies file for bench_fig05_privacy_loss.
# This may be replaced when dependencies are built.
