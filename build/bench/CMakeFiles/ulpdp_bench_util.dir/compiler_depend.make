# Empty compiler generated dependencies file for ulpdp_bench_util.
# This may be replaced when dependencies are built.
