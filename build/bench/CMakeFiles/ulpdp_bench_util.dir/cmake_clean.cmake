file(REMOVE_RECURSE
  "CMakeFiles/ulpdp_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/ulpdp_bench_util.dir/bench_util.cpp.o.d"
  "CMakeFiles/ulpdp_bench_util.dir/utility_table.cpp.o"
  "CMakeFiles/ulpdp_bench_util.dir/utility_table.cpp.o.d"
  "libulpdp_bench_util.a"
  "libulpdp_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulpdp_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
