file(REMOVE_RECURSE
  "libulpdp_bench_util.a"
)
