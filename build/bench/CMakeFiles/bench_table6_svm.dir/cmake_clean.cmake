file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_svm.dir/bench_table6_svm.cpp.o"
  "CMakeFiles/bench_table6_svm.dir/bench_table6_svm.cpp.o.d"
  "bench_table6_svm"
  "bench_table6_svm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_svm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
