file(REMOVE_RECURSE
  "libulpdp_ml.a"
)
