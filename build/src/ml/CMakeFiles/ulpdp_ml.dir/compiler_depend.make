# Empty compiler generated dependencies file for ulpdp_ml.
# This may be replaced when dependencies are built.
