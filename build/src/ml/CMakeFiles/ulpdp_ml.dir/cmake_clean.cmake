file(REMOVE_RECURSE
  "CMakeFiles/ulpdp_ml.dir/private_training.cpp.o"
  "CMakeFiles/ulpdp_ml.dir/private_training.cpp.o.d"
  "CMakeFiles/ulpdp_ml.dir/svm.cpp.o"
  "CMakeFiles/ulpdp_ml.dir/svm.cpp.o.d"
  "libulpdp_ml.a"
  "libulpdp_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulpdp_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
