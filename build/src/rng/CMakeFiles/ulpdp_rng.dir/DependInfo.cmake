
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rng/cordic.cpp" "src/rng/CMakeFiles/ulpdp_rng.dir/cordic.cpp.o" "gcc" "src/rng/CMakeFiles/ulpdp_rng.dir/cordic.cpp.o.d"
  "/root/repo/src/rng/fxp_inversion.cpp" "src/rng/CMakeFiles/ulpdp_rng.dir/fxp_inversion.cpp.o" "gcc" "src/rng/CMakeFiles/ulpdp_rng.dir/fxp_inversion.cpp.o.d"
  "/root/repo/src/rng/fxp_laplace.cpp" "src/rng/CMakeFiles/ulpdp_rng.dir/fxp_laplace.cpp.o" "gcc" "src/rng/CMakeFiles/ulpdp_rng.dir/fxp_laplace.cpp.o.d"
  "/root/repo/src/rng/fxp_laplace_pmf.cpp" "src/rng/CMakeFiles/ulpdp_rng.dir/fxp_laplace_pmf.cpp.o" "gcc" "src/rng/CMakeFiles/ulpdp_rng.dir/fxp_laplace_pmf.cpp.o.d"
  "/root/repo/src/rng/ideal_laplace.cpp" "src/rng/CMakeFiles/ulpdp_rng.dir/ideal_laplace.cpp.o" "gcc" "src/rng/CMakeFiles/ulpdp_rng.dir/ideal_laplace.cpp.o.d"
  "/root/repo/src/rng/laplace_table.cpp" "src/rng/CMakeFiles/ulpdp_rng.dir/laplace_table.cpp.o" "gcc" "src/rng/CMakeFiles/ulpdp_rng.dir/laplace_table.cpp.o.d"
  "/root/repo/src/rng/tausworthe.cpp" "src/rng/CMakeFiles/ulpdp_rng.dir/tausworthe.cpp.o" "gcc" "src/rng/CMakeFiles/ulpdp_rng.dir/tausworthe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ulpdp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fixed/CMakeFiles/ulpdp_fixed.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
