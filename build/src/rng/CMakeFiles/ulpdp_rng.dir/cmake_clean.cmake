file(REMOVE_RECURSE
  "CMakeFiles/ulpdp_rng.dir/cordic.cpp.o"
  "CMakeFiles/ulpdp_rng.dir/cordic.cpp.o.d"
  "CMakeFiles/ulpdp_rng.dir/fxp_inversion.cpp.o"
  "CMakeFiles/ulpdp_rng.dir/fxp_inversion.cpp.o.d"
  "CMakeFiles/ulpdp_rng.dir/fxp_laplace.cpp.o"
  "CMakeFiles/ulpdp_rng.dir/fxp_laplace.cpp.o.d"
  "CMakeFiles/ulpdp_rng.dir/fxp_laplace_pmf.cpp.o"
  "CMakeFiles/ulpdp_rng.dir/fxp_laplace_pmf.cpp.o.d"
  "CMakeFiles/ulpdp_rng.dir/ideal_laplace.cpp.o"
  "CMakeFiles/ulpdp_rng.dir/ideal_laplace.cpp.o.d"
  "CMakeFiles/ulpdp_rng.dir/laplace_table.cpp.o"
  "CMakeFiles/ulpdp_rng.dir/laplace_table.cpp.o.d"
  "CMakeFiles/ulpdp_rng.dir/tausworthe.cpp.o"
  "CMakeFiles/ulpdp_rng.dir/tausworthe.cpp.o.d"
  "libulpdp_rng.a"
  "libulpdp_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulpdp_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
