# Empty dependencies file for ulpdp_rng.
# This may be replaced when dependencies are built.
