file(REMOVE_RECURSE
  "libulpdp_rng.a"
)
