# Empty dependencies file for ulpdp_dpbox.
# This may be replaced when dependencies are built.
