
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dpbox/area_model.cpp" "src/dpbox/CMakeFiles/ulpdp_dpbox.dir/area_model.cpp.o" "gcc" "src/dpbox/CMakeFiles/ulpdp_dpbox.dir/area_model.cpp.o.d"
  "/root/repo/src/dpbox/dpbox.cpp" "src/dpbox/CMakeFiles/ulpdp_dpbox.dir/dpbox.cpp.o" "gcc" "src/dpbox/CMakeFiles/ulpdp_dpbox.dir/dpbox.cpp.o.d"
  "/root/repo/src/dpbox/driver.cpp" "src/dpbox/CMakeFiles/ulpdp_dpbox.dir/driver.cpp.o" "gcc" "src/dpbox/CMakeFiles/ulpdp_dpbox.dir/driver.cpp.o.d"
  "/root/repo/src/dpbox/provisioning.cpp" "src/dpbox/CMakeFiles/ulpdp_dpbox.dir/provisioning.cpp.o" "gcc" "src/dpbox/CMakeFiles/ulpdp_dpbox.dir/provisioning.cpp.o.d"
  "/root/repo/src/dpbox/trace.cpp" "src/dpbox/CMakeFiles/ulpdp_dpbox.dir/trace.cpp.o" "gcc" "src/dpbox/CMakeFiles/ulpdp_dpbox.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ulpdp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/ulpdp_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/fixed/CMakeFiles/ulpdp_fixed.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ulpdp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
