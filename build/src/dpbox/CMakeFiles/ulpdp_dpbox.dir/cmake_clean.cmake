file(REMOVE_RECURSE
  "CMakeFiles/ulpdp_dpbox.dir/area_model.cpp.o"
  "CMakeFiles/ulpdp_dpbox.dir/area_model.cpp.o.d"
  "CMakeFiles/ulpdp_dpbox.dir/dpbox.cpp.o"
  "CMakeFiles/ulpdp_dpbox.dir/dpbox.cpp.o.d"
  "CMakeFiles/ulpdp_dpbox.dir/driver.cpp.o"
  "CMakeFiles/ulpdp_dpbox.dir/driver.cpp.o.d"
  "CMakeFiles/ulpdp_dpbox.dir/provisioning.cpp.o"
  "CMakeFiles/ulpdp_dpbox.dir/provisioning.cpp.o.d"
  "CMakeFiles/ulpdp_dpbox.dir/trace.cpp.o"
  "CMakeFiles/ulpdp_dpbox.dir/trace.cpp.o.d"
  "libulpdp_dpbox.a"
  "libulpdp_dpbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulpdp_dpbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
