file(REMOVE_RECURSE
  "libulpdp_dpbox.a"
)
