
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/histogram_query.cpp" "src/query/CMakeFiles/ulpdp_query.dir/histogram_query.cpp.o" "gcc" "src/query/CMakeFiles/ulpdp_query.dir/histogram_query.cpp.o.d"
  "/root/repo/src/query/query.cpp" "src/query/CMakeFiles/ulpdp_query.dir/query.cpp.o" "gcc" "src/query/CMakeFiles/ulpdp_query.dir/query.cpp.o.d"
  "/root/repo/src/query/utility.cpp" "src/query/CMakeFiles/ulpdp_query.dir/utility.cpp.o" "gcc" "src/query/CMakeFiles/ulpdp_query.dir/utility.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ulpdp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ulpdp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/ulpdp_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/fixed/CMakeFiles/ulpdp_fixed.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
