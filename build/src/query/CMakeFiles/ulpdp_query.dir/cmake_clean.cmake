file(REMOVE_RECURSE
  "CMakeFiles/ulpdp_query.dir/histogram_query.cpp.o"
  "CMakeFiles/ulpdp_query.dir/histogram_query.cpp.o.d"
  "CMakeFiles/ulpdp_query.dir/query.cpp.o"
  "CMakeFiles/ulpdp_query.dir/query.cpp.o.d"
  "CMakeFiles/ulpdp_query.dir/utility.cpp.o"
  "CMakeFiles/ulpdp_query.dir/utility.cpp.o.d"
  "libulpdp_query.a"
  "libulpdp_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulpdp_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
