# Empty dependencies file for ulpdp_query.
# This may be replaced when dependencies are built.
