file(REMOVE_RECURSE
  "libulpdp_query.a"
)
