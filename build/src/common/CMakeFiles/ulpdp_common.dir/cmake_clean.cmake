file(REMOVE_RECURSE
  "CMakeFiles/ulpdp_common.dir/histogram.cpp.o"
  "CMakeFiles/ulpdp_common.dir/histogram.cpp.o.d"
  "CMakeFiles/ulpdp_common.dir/logging.cpp.o"
  "CMakeFiles/ulpdp_common.dir/logging.cpp.o.d"
  "CMakeFiles/ulpdp_common.dir/stats.cpp.o"
  "CMakeFiles/ulpdp_common.dir/stats.cpp.o.d"
  "CMakeFiles/ulpdp_common.dir/table.cpp.o"
  "CMakeFiles/ulpdp_common.dir/table.cpp.o.d"
  "libulpdp_common.a"
  "libulpdp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulpdp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
