# Empty compiler generated dependencies file for ulpdp_common.
# This may be replaced when dependencies are built.
