file(REMOVE_RECURSE
  "libulpdp_common.a"
)
