# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("fixed")
subdirs("rng")
subdirs("core")
subdirs("dpbox")
subdirs("query")
subdirs("data")
subdirs("ml")
subdirs("sim")
