
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/csv.cpp" "src/data/CMakeFiles/ulpdp_data.dir/csv.cpp.o" "gcc" "src/data/CMakeFiles/ulpdp_data.dir/csv.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/data/CMakeFiles/ulpdp_data.dir/dataset.cpp.o" "gcc" "src/data/CMakeFiles/ulpdp_data.dir/dataset.cpp.o.d"
  "/root/repo/src/data/generators.cpp" "src/data/CMakeFiles/ulpdp_data.dir/generators.cpp.o" "gcc" "src/data/CMakeFiles/ulpdp_data.dir/generators.cpp.o.d"
  "/root/repo/src/data/timeseries.cpp" "src/data/CMakeFiles/ulpdp_data.dir/timeseries.cpp.o" "gcc" "src/data/CMakeFiles/ulpdp_data.dir/timeseries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ulpdp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ulpdp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/ulpdp_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/fixed/CMakeFiles/ulpdp_fixed.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
