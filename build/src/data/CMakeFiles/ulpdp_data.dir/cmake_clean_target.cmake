file(REMOVE_RECURSE
  "libulpdp_data.a"
)
