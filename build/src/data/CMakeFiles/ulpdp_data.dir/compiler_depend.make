# Empty compiler generated dependencies file for ulpdp_data.
# This may be replaced when dependencies are built.
