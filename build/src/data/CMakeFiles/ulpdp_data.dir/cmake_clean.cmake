file(REMOVE_RECURSE
  "CMakeFiles/ulpdp_data.dir/csv.cpp.o"
  "CMakeFiles/ulpdp_data.dir/csv.cpp.o.d"
  "CMakeFiles/ulpdp_data.dir/dataset.cpp.o"
  "CMakeFiles/ulpdp_data.dir/dataset.cpp.o.d"
  "CMakeFiles/ulpdp_data.dir/generators.cpp.o"
  "CMakeFiles/ulpdp_data.dir/generators.cpp.o.d"
  "CMakeFiles/ulpdp_data.dir/timeseries.cpp.o"
  "CMakeFiles/ulpdp_data.dir/timeseries.cpp.o.d"
  "libulpdp_data.a"
  "libulpdp_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulpdp_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
