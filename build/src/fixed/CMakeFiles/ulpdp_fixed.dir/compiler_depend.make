# Empty compiler generated dependencies file for ulpdp_fixed.
# This may be replaced when dependencies are built.
