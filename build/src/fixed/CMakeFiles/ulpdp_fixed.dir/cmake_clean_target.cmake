file(REMOVE_RECURSE
  "libulpdp_fixed.a"
)
