file(REMOVE_RECURSE
  "CMakeFiles/ulpdp_fixed.dir/quantizer.cpp.o"
  "CMakeFiles/ulpdp_fixed.dir/quantizer.cpp.o.d"
  "libulpdp_fixed.a"
  "libulpdp_fixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulpdp_fixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
