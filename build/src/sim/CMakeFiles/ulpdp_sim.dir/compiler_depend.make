# Empty compiler generated dependencies file for ulpdp_sim.
# This may be replaced when dependencies are built.
