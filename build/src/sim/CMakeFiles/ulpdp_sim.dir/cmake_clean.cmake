file(REMOVE_RECURSE
  "CMakeFiles/ulpdp_sim.dir/adversary.cpp.o"
  "CMakeFiles/ulpdp_sim.dir/adversary.cpp.o.d"
  "CMakeFiles/ulpdp_sim.dir/energy_model.cpp.o"
  "CMakeFiles/ulpdp_sim.dir/energy_model.cpp.o.d"
  "CMakeFiles/ulpdp_sim.dir/msp430_cost.cpp.o"
  "CMakeFiles/ulpdp_sim.dir/msp430_cost.cpp.o.d"
  "CMakeFiles/ulpdp_sim.dir/sensor_adc.cpp.o"
  "CMakeFiles/ulpdp_sim.dir/sensor_adc.cpp.o.d"
  "CMakeFiles/ulpdp_sim.dir/sensor_bus.cpp.o"
  "CMakeFiles/ulpdp_sim.dir/sensor_bus.cpp.o.d"
  "libulpdp_sim.a"
  "libulpdp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulpdp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
