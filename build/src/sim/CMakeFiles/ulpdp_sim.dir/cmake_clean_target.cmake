file(REMOVE_RECURSE
  "libulpdp_sim.a"
)
