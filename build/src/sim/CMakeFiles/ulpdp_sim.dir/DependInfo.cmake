
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/adversary.cpp" "src/sim/CMakeFiles/ulpdp_sim.dir/adversary.cpp.o" "gcc" "src/sim/CMakeFiles/ulpdp_sim.dir/adversary.cpp.o.d"
  "/root/repo/src/sim/energy_model.cpp" "src/sim/CMakeFiles/ulpdp_sim.dir/energy_model.cpp.o" "gcc" "src/sim/CMakeFiles/ulpdp_sim.dir/energy_model.cpp.o.d"
  "/root/repo/src/sim/msp430_cost.cpp" "src/sim/CMakeFiles/ulpdp_sim.dir/msp430_cost.cpp.o" "gcc" "src/sim/CMakeFiles/ulpdp_sim.dir/msp430_cost.cpp.o.d"
  "/root/repo/src/sim/sensor_adc.cpp" "src/sim/CMakeFiles/ulpdp_sim.dir/sensor_adc.cpp.o" "gcc" "src/sim/CMakeFiles/ulpdp_sim.dir/sensor_adc.cpp.o.d"
  "/root/repo/src/sim/sensor_bus.cpp" "src/sim/CMakeFiles/ulpdp_sim.dir/sensor_bus.cpp.o" "gcc" "src/sim/CMakeFiles/ulpdp_sim.dir/sensor_bus.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ulpdp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ulpdp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/ulpdp_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/fixed/CMakeFiles/ulpdp_fixed.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
