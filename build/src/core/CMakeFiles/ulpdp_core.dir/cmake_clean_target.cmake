file(REMOVE_RECURSE
  "libulpdp_core.a"
)
