
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/budget.cpp" "src/core/CMakeFiles/ulpdp_core.dir/budget.cpp.o" "gcc" "src/core/CMakeFiles/ulpdp_core.dir/budget.cpp.o.d"
  "/root/repo/src/core/constant_time.cpp" "src/core/CMakeFiles/ulpdp_core.dir/constant_time.cpp.o" "gcc" "src/core/CMakeFiles/ulpdp_core.dir/constant_time.cpp.o.d"
  "/root/repo/src/core/fxp_mechanism.cpp" "src/core/CMakeFiles/ulpdp_core.dir/fxp_mechanism.cpp.o" "gcc" "src/core/CMakeFiles/ulpdp_core.dir/fxp_mechanism.cpp.o.d"
  "/root/repo/src/core/generic_mechanism.cpp" "src/core/CMakeFiles/ulpdp_core.dir/generic_mechanism.cpp.o" "gcc" "src/core/CMakeFiles/ulpdp_core.dir/generic_mechanism.cpp.o.d"
  "/root/repo/src/core/ideal_laplace_mechanism.cpp" "src/core/CMakeFiles/ulpdp_core.dir/ideal_laplace_mechanism.cpp.o" "gcc" "src/core/CMakeFiles/ulpdp_core.dir/ideal_laplace_mechanism.cpp.o.d"
  "/root/repo/src/core/kary_randomized_response.cpp" "src/core/CMakeFiles/ulpdp_core.dir/kary_randomized_response.cpp.o" "gcc" "src/core/CMakeFiles/ulpdp_core.dir/kary_randomized_response.cpp.o.d"
  "/root/repo/src/core/output_model.cpp" "src/core/CMakeFiles/ulpdp_core.dir/output_model.cpp.o" "gcc" "src/core/CMakeFiles/ulpdp_core.dir/output_model.cpp.o.d"
  "/root/repo/src/core/privacy_loss.cpp" "src/core/CMakeFiles/ulpdp_core.dir/privacy_loss.cpp.o" "gcc" "src/core/CMakeFiles/ulpdp_core.dir/privacy_loss.cpp.o.d"
  "/root/repo/src/core/randomized_response.cpp" "src/core/CMakeFiles/ulpdp_core.dir/randomized_response.cpp.o" "gcc" "src/core/CMakeFiles/ulpdp_core.dir/randomized_response.cpp.o.d"
  "/root/repo/src/core/resampling_mechanism.cpp" "src/core/CMakeFiles/ulpdp_core.dir/resampling_mechanism.cpp.o" "gcc" "src/core/CMakeFiles/ulpdp_core.dir/resampling_mechanism.cpp.o.d"
  "/root/repo/src/core/shared_budget.cpp" "src/core/CMakeFiles/ulpdp_core.dir/shared_budget.cpp.o" "gcc" "src/core/CMakeFiles/ulpdp_core.dir/shared_budget.cpp.o.d"
  "/root/repo/src/core/threshold_calc.cpp" "src/core/CMakeFiles/ulpdp_core.dir/threshold_calc.cpp.o" "gcc" "src/core/CMakeFiles/ulpdp_core.dir/threshold_calc.cpp.o.d"
  "/root/repo/src/core/thresholding_mechanism.cpp" "src/core/CMakeFiles/ulpdp_core.dir/thresholding_mechanism.cpp.o" "gcc" "src/core/CMakeFiles/ulpdp_core.dir/thresholding_mechanism.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ulpdp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fixed/CMakeFiles/ulpdp_fixed.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/ulpdp_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
