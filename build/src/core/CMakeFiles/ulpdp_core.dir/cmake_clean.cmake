file(REMOVE_RECURSE
  "CMakeFiles/ulpdp_core.dir/budget.cpp.o"
  "CMakeFiles/ulpdp_core.dir/budget.cpp.o.d"
  "CMakeFiles/ulpdp_core.dir/constant_time.cpp.o"
  "CMakeFiles/ulpdp_core.dir/constant_time.cpp.o.d"
  "CMakeFiles/ulpdp_core.dir/fxp_mechanism.cpp.o"
  "CMakeFiles/ulpdp_core.dir/fxp_mechanism.cpp.o.d"
  "CMakeFiles/ulpdp_core.dir/generic_mechanism.cpp.o"
  "CMakeFiles/ulpdp_core.dir/generic_mechanism.cpp.o.d"
  "CMakeFiles/ulpdp_core.dir/ideal_laplace_mechanism.cpp.o"
  "CMakeFiles/ulpdp_core.dir/ideal_laplace_mechanism.cpp.o.d"
  "CMakeFiles/ulpdp_core.dir/kary_randomized_response.cpp.o"
  "CMakeFiles/ulpdp_core.dir/kary_randomized_response.cpp.o.d"
  "CMakeFiles/ulpdp_core.dir/output_model.cpp.o"
  "CMakeFiles/ulpdp_core.dir/output_model.cpp.o.d"
  "CMakeFiles/ulpdp_core.dir/privacy_loss.cpp.o"
  "CMakeFiles/ulpdp_core.dir/privacy_loss.cpp.o.d"
  "CMakeFiles/ulpdp_core.dir/randomized_response.cpp.o"
  "CMakeFiles/ulpdp_core.dir/randomized_response.cpp.o.d"
  "CMakeFiles/ulpdp_core.dir/resampling_mechanism.cpp.o"
  "CMakeFiles/ulpdp_core.dir/resampling_mechanism.cpp.o.d"
  "CMakeFiles/ulpdp_core.dir/shared_budget.cpp.o"
  "CMakeFiles/ulpdp_core.dir/shared_budget.cpp.o.d"
  "CMakeFiles/ulpdp_core.dir/threshold_calc.cpp.o"
  "CMakeFiles/ulpdp_core.dir/threshold_calc.cpp.o.d"
  "CMakeFiles/ulpdp_core.dir/thresholding_mechanism.cpp.o"
  "CMakeFiles/ulpdp_core.dir/thresholding_mechanism.cpp.o.d"
  "libulpdp_core.a"
  "libulpdp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulpdp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
