# Empty compiler generated dependencies file for ulpdp_core.
# This may be replaced when dependencies are built.
