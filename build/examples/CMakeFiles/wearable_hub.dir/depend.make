# Empty dependencies file for wearable_hub.
# This may be replaced when dependencies are built.
