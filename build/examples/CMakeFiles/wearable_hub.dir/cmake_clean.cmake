file(REMOVE_RECURSE
  "CMakeFiles/wearable_hub.dir/wearable_hub.cpp.o"
  "CMakeFiles/wearable_hub.dir/wearable_hub.cpp.o.d"
  "wearable_hub"
  "wearable_hub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wearable_hub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
