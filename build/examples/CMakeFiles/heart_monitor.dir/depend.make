# Empty dependencies file for heart_monitor.
# This may be replaced when dependencies are built.
