file(REMOVE_RECURSE
  "CMakeFiles/heart_monitor.dir/heart_monitor.cpp.o"
  "CMakeFiles/heart_monitor.dir/heart_monitor.cpp.o.d"
  "heart_monitor"
  "heart_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heart_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
