# Empty compiler generated dependencies file for occupancy_survey.
# This may be replaced when dependencies are built.
