file(REMOVE_RECURSE
  "CMakeFiles/occupancy_survey.dir/occupancy_survey.cpp.o"
  "CMakeFiles/occupancy_survey.dir/occupancy_survey.cpp.o.d"
  "occupancy_survey"
  "occupancy_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/occupancy_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
