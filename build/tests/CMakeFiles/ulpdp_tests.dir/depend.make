# Empty dependencies file for ulpdp_tests.
# This may be replaced when dependencies are built.
