
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_accountant.cpp" "tests/CMakeFiles/ulpdp_tests.dir/test_accountant.cpp.o" "gcc" "tests/CMakeFiles/ulpdp_tests.dir/test_accountant.cpp.o.d"
  "/root/repo/tests/test_area_model.cpp" "tests/CMakeFiles/ulpdp_tests.dir/test_area_model.cpp.o" "gcc" "tests/CMakeFiles/ulpdp_tests.dir/test_area_model.cpp.o.d"
  "/root/repo/tests/test_budget.cpp" "tests/CMakeFiles/ulpdp_tests.dir/test_budget.cpp.o" "gcc" "tests/CMakeFiles/ulpdp_tests.dir/test_budget.cpp.o.d"
  "/root/repo/tests/test_constant_time.cpp" "tests/CMakeFiles/ulpdp_tests.dir/test_constant_time.cpp.o" "gcc" "tests/CMakeFiles/ulpdp_tests.dir/test_constant_time.cpp.o.d"
  "/root/repo/tests/test_cordic.cpp" "tests/CMakeFiles/ulpdp_tests.dir/test_cordic.cpp.o" "gcc" "tests/CMakeFiles/ulpdp_tests.dir/test_cordic.cpp.o.d"
  "/root/repo/tests/test_csv.cpp" "tests/CMakeFiles/ulpdp_tests.dir/test_csv.cpp.o" "gcc" "tests/CMakeFiles/ulpdp_tests.dir/test_csv.cpp.o.d"
  "/root/repo/tests/test_dataset.cpp" "tests/CMakeFiles/ulpdp_tests.dir/test_dataset.cpp.o" "gcc" "tests/CMakeFiles/ulpdp_tests.dir/test_dataset.cpp.o.d"
  "/root/repo/tests/test_dpbox.cpp" "tests/CMakeFiles/ulpdp_tests.dir/test_dpbox.cpp.o" "gcc" "tests/CMakeFiles/ulpdp_tests.dir/test_dpbox.cpp.o.d"
  "/root/repo/tests/test_driver.cpp" "tests/CMakeFiles/ulpdp_tests.dir/test_driver.cpp.o" "gcc" "tests/CMakeFiles/ulpdp_tests.dir/test_driver.cpp.o.d"
  "/root/repo/tests/test_fixed_point.cpp" "tests/CMakeFiles/ulpdp_tests.dir/test_fixed_point.cpp.o" "gcc" "tests/CMakeFiles/ulpdp_tests.dir/test_fixed_point.cpp.o.d"
  "/root/repo/tests/test_fuzz.cpp" "tests/CMakeFiles/ulpdp_tests.dir/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/ulpdp_tests.dir/test_fuzz.cpp.o.d"
  "/root/repo/tests/test_fxp_inversion.cpp" "tests/CMakeFiles/ulpdp_tests.dir/test_fxp_inversion.cpp.o" "gcc" "tests/CMakeFiles/ulpdp_tests.dir/test_fxp_inversion.cpp.o.d"
  "/root/repo/tests/test_fxp_laplace.cpp" "tests/CMakeFiles/ulpdp_tests.dir/test_fxp_laplace.cpp.o" "gcc" "tests/CMakeFiles/ulpdp_tests.dir/test_fxp_laplace.cpp.o.d"
  "/root/repo/tests/test_fxp_laplace_pmf.cpp" "tests/CMakeFiles/ulpdp_tests.dir/test_fxp_laplace_pmf.cpp.o" "gcc" "tests/CMakeFiles/ulpdp_tests.dir/test_fxp_laplace_pmf.cpp.o.d"
  "/root/repo/tests/test_generators.cpp" "tests/CMakeFiles/ulpdp_tests.dir/test_generators.cpp.o" "gcc" "tests/CMakeFiles/ulpdp_tests.dir/test_generators.cpp.o.d"
  "/root/repo/tests/test_generic_mechanism.cpp" "tests/CMakeFiles/ulpdp_tests.dir/test_generic_mechanism.cpp.o" "gcc" "tests/CMakeFiles/ulpdp_tests.dir/test_generic_mechanism.cpp.o.d"
  "/root/repo/tests/test_hardened.cpp" "tests/CMakeFiles/ulpdp_tests.dir/test_hardened.cpp.o" "gcc" "tests/CMakeFiles/ulpdp_tests.dir/test_hardened.cpp.o.d"
  "/root/repo/tests/test_histogram.cpp" "tests/CMakeFiles/ulpdp_tests.dir/test_histogram.cpp.o" "gcc" "tests/CMakeFiles/ulpdp_tests.dir/test_histogram.cpp.o.d"
  "/root/repo/tests/test_histogram_query.cpp" "tests/CMakeFiles/ulpdp_tests.dir/test_histogram_query.cpp.o" "gcc" "tests/CMakeFiles/ulpdp_tests.dir/test_histogram_query.cpp.o.d"
  "/root/repo/tests/test_ideal_laplace.cpp" "tests/CMakeFiles/ulpdp_tests.dir/test_ideal_laplace.cpp.o" "gcc" "tests/CMakeFiles/ulpdp_tests.dir/test_ideal_laplace.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/ulpdp_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/ulpdp_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_integration_extensions.cpp" "tests/CMakeFiles/ulpdp_tests.dir/test_integration_extensions.cpp.o" "gcc" "tests/CMakeFiles/ulpdp_tests.dir/test_integration_extensions.cpp.o.d"
  "/root/repo/tests/test_kary_rr.cpp" "tests/CMakeFiles/ulpdp_tests.dir/test_kary_rr.cpp.o" "gcc" "tests/CMakeFiles/ulpdp_tests.dir/test_kary_rr.cpp.o.d"
  "/root/repo/tests/test_logging.cpp" "tests/CMakeFiles/ulpdp_tests.dir/test_logging.cpp.o" "gcc" "tests/CMakeFiles/ulpdp_tests.dir/test_logging.cpp.o.d"
  "/root/repo/tests/test_mechanisms.cpp" "tests/CMakeFiles/ulpdp_tests.dir/test_mechanisms.cpp.o" "gcc" "tests/CMakeFiles/ulpdp_tests.dir/test_mechanisms.cpp.o.d"
  "/root/repo/tests/test_model_properties.cpp" "tests/CMakeFiles/ulpdp_tests.dir/test_model_properties.cpp.o" "gcc" "tests/CMakeFiles/ulpdp_tests.dir/test_model_properties.cpp.o.d"
  "/root/repo/tests/test_output_models.cpp" "tests/CMakeFiles/ulpdp_tests.dir/test_output_models.cpp.o" "gcc" "tests/CMakeFiles/ulpdp_tests.dir/test_output_models.cpp.o.d"
  "/root/repo/tests/test_privacy_loss.cpp" "tests/CMakeFiles/ulpdp_tests.dir/test_privacy_loss.cpp.o" "gcc" "tests/CMakeFiles/ulpdp_tests.dir/test_privacy_loss.cpp.o.d"
  "/root/repo/tests/test_provisioning.cpp" "tests/CMakeFiles/ulpdp_tests.dir/test_provisioning.cpp.o" "gcc" "tests/CMakeFiles/ulpdp_tests.dir/test_provisioning.cpp.o.d"
  "/root/repo/tests/test_quantizer.cpp" "tests/CMakeFiles/ulpdp_tests.dir/test_quantizer.cpp.o" "gcc" "tests/CMakeFiles/ulpdp_tests.dir/test_quantizer.cpp.o.d"
  "/root/repo/tests/test_query.cpp" "tests/CMakeFiles/ulpdp_tests.dir/test_query.cpp.o" "gcc" "tests/CMakeFiles/ulpdp_tests.dir/test_query.cpp.o.d"
  "/root/repo/tests/test_randomized_response.cpp" "tests/CMakeFiles/ulpdp_tests.dir/test_randomized_response.cpp.o" "gcc" "tests/CMakeFiles/ulpdp_tests.dir/test_randomized_response.cpp.o.d"
  "/root/repo/tests/test_sampler_table.cpp" "tests/CMakeFiles/ulpdp_tests.dir/test_sampler_table.cpp.o" "gcc" "tests/CMakeFiles/ulpdp_tests.dir/test_sampler_table.cpp.o.d"
  "/root/repo/tests/test_sensor_adc.cpp" "tests/CMakeFiles/ulpdp_tests.dir/test_sensor_adc.cpp.o" "gcc" "tests/CMakeFiles/ulpdp_tests.dir/test_sensor_adc.cpp.o.d"
  "/root/repo/tests/test_sensor_bus.cpp" "tests/CMakeFiles/ulpdp_tests.dir/test_sensor_bus.cpp.o" "gcc" "tests/CMakeFiles/ulpdp_tests.dir/test_sensor_bus.cpp.o.d"
  "/root/repo/tests/test_shared_budget.cpp" "tests/CMakeFiles/ulpdp_tests.dir/test_shared_budget.cpp.o" "gcc" "tests/CMakeFiles/ulpdp_tests.dir/test_shared_budget.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/ulpdp_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/ulpdp_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/ulpdp_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/ulpdp_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_svm.cpp" "tests/CMakeFiles/ulpdp_tests.dir/test_svm.cpp.o" "gcc" "tests/CMakeFiles/ulpdp_tests.dir/test_svm.cpp.o.d"
  "/root/repo/tests/test_table.cpp" "tests/CMakeFiles/ulpdp_tests.dir/test_table.cpp.o" "gcc" "tests/CMakeFiles/ulpdp_tests.dir/test_table.cpp.o.d"
  "/root/repo/tests/test_tausworthe.cpp" "tests/CMakeFiles/ulpdp_tests.dir/test_tausworthe.cpp.o" "gcc" "tests/CMakeFiles/ulpdp_tests.dir/test_tausworthe.cpp.o.d"
  "/root/repo/tests/test_threshold_calc.cpp" "tests/CMakeFiles/ulpdp_tests.dir/test_threshold_calc.cpp.o" "gcc" "tests/CMakeFiles/ulpdp_tests.dir/test_threshold_calc.cpp.o.d"
  "/root/repo/tests/test_timeseries.cpp" "tests/CMakeFiles/ulpdp_tests.dir/test_timeseries.cpp.o" "gcc" "tests/CMakeFiles/ulpdp_tests.dir/test_timeseries.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/ulpdp_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/ulpdp_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_utility.cpp" "tests/CMakeFiles/ulpdp_tests.dir/test_utility.cpp.o" "gcc" "tests/CMakeFiles/ulpdp_tests.dir/test_utility.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ulpdp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dpbox/CMakeFiles/ulpdp_dpbox.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/ulpdp_query.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/ulpdp_data.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/ulpdp_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ulpdp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/ulpdp_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/fixed/CMakeFiles/ulpdp_fixed.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ulpdp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
