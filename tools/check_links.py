#!/usr/bin/env python3
"""Markdown link lint: every relative link in the repo's *.md files
must point at a file or directory that exists.

Scans the repository root and docs/ (non-recursive beyond those; the
repo keeps its documentation flat). External links (http/https/mailto)
are not fetched -- CI must stay hermetic -- only relative paths are
checked, with any #anchor suffix stripped. Exits nonzero listing every
broken link.

Usage: python3 tools/check_links.py [repo_root]
"""

import os
import re
import sys

# [text](target) -- excluding images' leading ! is unnecessary: image
# targets must exist too.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# `code spans` never contain real links worth checking.
CODE_SPAN_RE = re.compile(r"`[^`]*`")
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def markdown_files(root):
    for d in (root, os.path.join(root, "docs")):
        if not os.path.isdir(d):
            continue
        for name in sorted(os.listdir(d)):
            if name.endswith(".md"):
                yield os.path.join(d, name)


def check_file(path, root):
    broken = []
    with open(path, encoding="utf-8") as f:
        in_fence = False
        for lineno, line in enumerate(f, 1):
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for target in LINK_RE.findall(CODE_SPAN_RE.sub("", line)):
                if target.startswith(EXTERNAL) or target.startswith("#"):
                    continue
                rel = target.split("#", 1)[0]
                if not rel:
                    continue
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(path), rel))
                if not os.path.exists(resolved):
                    broken.append((lineno, target))
    return broken


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    failures = 0
    checked = 0
    for md in markdown_files(root):
        checked += 1
        for lineno, target in check_file(md, root):
            print(f"{os.path.relpath(md, root)}:{lineno}: "
                  f"broken link -> {target}")
            failures += 1
    print(f"check_links: {checked} files, {failures} broken links")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
