/**
 * @file
 * CLI driver for the exact-PMF privacy certifier (the CI certify
 * gate).
 *
 * Derives every registered mechanism's exact output distribution at a
 * chosen URNG width (segment-rank engine, Bu <= 32) and
 * machine-checks the Eq. (4) worst-case loss against
 * loss_multiple * eps. Exit status 0 iff every mechanism certifies,
 * so CI can gate on the process result; --json writes the
 * certificates for the artifact upload.
 *
 *   ulpdp_certify [--bu N] [--epsilon E] [--multiple M]
 *                 [--range LO HI] [--json PATH] [--jobs N]
 *                 [--mechanism NAME] [--legacy-enumerate]
 *                 [--no-timing]
 *
 * --jobs 0 uses every hardware thread; certificates are identical
 * for every job count. --legacy-enumerate switches to the per-state
 * cross-check enumerator (Bu <= 24); CI diffs its output against the
 * fast engine's at the byte-compat working points. --no-timing omits
 * the per-certificate elapsed_seconds / states_per_second JSON
 * fields, for byte-stable diffs.
 */

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/pmf_certifier.h"

using namespace ulpdp;

namespace {

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--bu N] [--epsilon E] [--multiple M] "
                 "[--range LO HI] [--json PATH] [--jobs N] "
                 "[--mechanism NAME] [--legacy-enumerate] "
                 "[--no-timing]\n", argv0);
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    FxpMechanismParams profile;
    profile.range = SensorRange(-20.0, 60.0); // the paper's example
    // Default eps = 1 rather than the paper's 0.5: at the default
    // Bu = 8 the discrete-Laplace scale correction needs more
    // headroom than 256 URNG states leave under 2 * 0.5 (its ln 2
    // zero-atom penalty is scale-invariant). Bu >= 10 certifies the
    // full set at eps = 0.5; CI runs both points.
    profile.epsilon = 1.0;
    profile.uniform_bits = 8;
    double multiple = 2.0;
    std::string json_path;
    std::string mechanism;
    int jobs = 1;
    bool legacy = false;
    bool timing = true;

    for (int i = 1; i < argc; ++i) {
        auto want = [&](int n) {
            if (i + n >= argc)
                usage(argv[0]);
        };
        if (std::strcmp(argv[i], "--bu") == 0) {
            want(1);
            profile.uniform_bits = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--epsilon") == 0) {
            want(1);
            profile.epsilon = std::atof(argv[++i]);
        } else if (std::strcmp(argv[i], "--multiple") == 0) {
            want(1);
            multiple = std::atof(argv[++i]);
        } else if (std::strcmp(argv[i], "--range") == 0) {
            want(2);
            double lo = std::atof(argv[++i]);
            double hi = std::atof(argv[++i]);
            profile.range = SensorRange(lo, hi);
        } else if (std::strcmp(argv[i], "--json") == 0) {
            want(1);
            json_path = argv[++i];
        } else if (std::strcmp(argv[i], "--jobs") == 0) {
            want(1);
            jobs = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--mechanism") == 0) {
            want(1);
            mechanism = argv[++i];
        } else if (std::strcmp(argv[i], "--legacy-enumerate") == 0) {
            legacy = true;
        } else if (std::strcmp(argv[i], "--no-timing") == 0) {
            timing = false;
        } else {
            usage(argv[0]);
        }
    }

    std::printf("Exact-PMF certification: Bu=%d eps=%g bound=%g*eps "
                "range=[%g, %g] engine=%s jobs=%d\n",
                profile.uniform_bits, profile.epsilon, multiple,
                profile.range.lo, profile.range.hi,
                legacy ? "legacy-per-state" : "segment-rank", jobs);

    PmfCertifier certifier(profile, multiple);
    certifier.setJobs(jobs);
    certifier.setLegacyEnumeration(legacy);
    std::vector<MechanismCertificate> certs;
    if (mechanism.empty())
        certs = certifier.certifyAll();
    else
        certs.push_back(certifier.certify(mechanism));

    for (const MechanismCertificate &c : certs) {
        std::printf("  %-26s T=%-4" PRId64 " worst=%-12.9g "
                    "margin=%-12.9g inf=%" PRIu64 "  %s  "
                    "(%.3fs, %.3g states/s)\n",
                    c.mechanism.c_str(), c.threshold_index,
                    c.worst_case_loss, c.margin, c.infinite_outputs,
                    c.certified ? "CERTIFIED" : "FAILED",
                    c.elapsed_seconds, c.states_per_second);
    }

    PmfCertifier::writeJson(certs, json_path, timing);
    if (!json_path.empty())
        std::printf("certificates written to %s\n",
                    json_path.c_str());

    if (!PmfCertifier::allCertified(certs)) {
        std::fprintf(stderr,
                     "certification FAILED: at least one registered "
                     "mechanism exceeds its loss bound\n");
        return 1;
    }
    std::printf("all %zu registered mechanisms certified\n",
                certs.size());
    return 0;
}
