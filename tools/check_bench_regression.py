#!/usr/bin/env python3
"""Perf-regression gate over the BENCH_*.json side-channel files.

Compares a freshly produced bench JSON against a committed baseline
(bench/baselines/) and fails when performance regressed beyond the
tolerance or when a determinism fingerprint moved at all:

 - keys named "fingerprint" must match the baseline bit for bit
   (a mismatch is a correctness bug, never a perf matter);
 - "ns_per_*" keys are lower-is-better timings, gated at
   current <= baseline * (1 + tolerance);
 - "reports_per_second" keys are higher-is-better throughputs, gated
   at current >= baseline * (1 - tolerance).

On top of the baseline comparison, two absolute checks run against
the CURRENT run alone (no baseline value involved):

 - scaling floor: every sweep entry carrying "threads" and
   "speedup_vs_1" must meet the per-thread-count minimum speedup
   (--scaling-floors, default 2:1.5,4:3.0,8:5.5). The flat-scaling
   bug this gate exists for -- speedup_vs_1 = 0.86 at 8 threads --
   sailed through the old timing gate because each thread count's
   *throughput* was within tolerance of its equally-flat baseline.
   Host-core-count guard: a floor for t threads is enforced only when
   the current run's "hardware_threads" is at least t, and the whole
   check is skipped below 4 cores (a small runner cannot witness
   scaling at all; the skip is reported, not silent).
 - telemetry overhead: "telemetry_overhead_pct" must lie in
   [0, --telemetry-budget] (default 5.0). A negative value means the
   bench's clamp protocol is missing, which is its own failure.
 - absolute rate floors: --min-rate KEY:FLOOR (repeatable) requires
   every occurrence of KEY in the current run to be a number >= FLOOR
   and the key to occur at least once. Unlike the ratio gate this
   does not drift with the baseline: the agg bench uses it to pin the
   single-thread ingest rate at the line-rate requirement (2e7/s)
   no matter what a fast reference machine committed.

Being faster than the baseline never fails the gate; refresh the
baseline (regenerate the JSON on the reference machine and commit it)
when an intentional improvement should tighten it. Structural drift --
a gated key present in the baseline but missing from the current run --
fails loudly, so a bench cannot silently stop reporting a metric.

Usage:
    check_bench_regression.py CURRENT BASELINE [--tolerance 0.2]
                              [--skip-timing]
                              [--scaling-floors 2:1.5,4:3.0,8:5.5]
                              [--telemetry-budget 5.0]
                              [--require-zero KEY ...]
                              [--min-rate KEY:FLOOR ...]

--skip-timing checks only the fingerprints; sanitizer and
scalar-fallback builds use it, where timings are meaningless but the
merged-report bits must still match the committed baseline exactly.
It also skips the scaling-floor, telemetry-overhead and min-rate
checks (all are timing-derived).

--require-zero KEY (repeatable) asserts that every occurrence of KEY
anywhere in the CURRENT run is exactly 0, and that the key occurs at
least once. This is a correctness gate like the fingerprint -- the
ledger storm uses it for "budget_resurrections" -- so it is enforced
even under --skip-timing.
"""

import argparse
import json
import sys


def walk(current, baseline, path, findings):
    """Recursively pair up gated keys of the two JSON trees."""
    if isinstance(baseline, dict):
        if not isinstance(current, dict):
            findings.append((path, "shape", None, None, False))
            return
        for key, base_val in baseline.items():
            sub = f"{path}.{key}" if path else key
            if key == "fingerprint" or key.startswith("ns_per_") or \
                    key == "reports_per_second":
                if key not in current:
                    findings.append((sub, "missing", base_val, None,
                                     False))
                else:
                    findings.append((sub, kind_of(key), base_val,
                                     current[key], True))
            elif key in current:
                walk(current[key], base_val, sub, findings)
    elif isinstance(baseline, list) and isinstance(current, list):
        for i, (cur, base) in enumerate(zip(current, baseline)):
            walk(cur, base, f"{path}[{i}]", findings)


def kind_of(key):
    if key == "fingerprint":
        return "fingerprint"
    if key.startswith("ns_per_"):
        return "lower_better"
    return "higher_better"


def parse_floors(spec):
    """'2:1.5,4:3.0,8:5.5' -> {2: 1.5, 4: 3.0, 8: 5.5}."""
    floors = {}
    for part in filter(None, spec.split(",")):
        threads, floor = part.split(":")
        floors[int(threads)] = float(floor)
    return floors


def find_scaling_entries(node, out):
    """Collect every dict carrying both a thread count and a measured
    speedup, wherever it sits in the JSON tree."""
    if isinstance(node, dict):
        if "threads" in node and "speedup_vs_1" in node:
            out.append(node)
        for value in node.values():
            find_scaling_entries(value, out)
    elif isinstance(node, list):
        for value in node:
            find_scaling_entries(value, out)


def check_scaling(current, floors, min_cores):
    """Enforce per-thread-count speedup floors on the current run.

    Returns (checked, failures). Guarded by the host core count
    recorded in the run itself: a floor for t threads only applies
    when the host had >= t cores, and nothing applies below
    `min_cores` (a 1-core container's sweep measures timeslicing,
    not scaling).
    """
    cores = current.get("hardware_threads")
    entries = []
    find_scaling_entries(current, entries)
    if not entries:
        return 0, 0
    if not isinstance(cores, int) or cores < min_cores:
        print(f"skip scaling floors: host reports {cores!r} cores "
              f"(< {min_cores}); scaling cannot be witnessed here")
        return 0, 0
    checked = failures = 0
    for entry in entries:
        threads = entry["threads"]
        speedup = entry["speedup_vs_1"]
        floor = floors.get(threads)
        if floor is None or threads <= 1:
            continue
        if cores < threads:
            print(f"skip scaling floor at {threads} threads: host "
                  f"has only {cores} cores")
            continue
        checked += 1
        ok = isinstance(speedup, (int, float)) and speedup >= floor
        print(f"{'ok  ' if ok else 'FAIL'} speedup_vs_1 at {threads} "
              f"threads: {speedup:g} (floor {floor:g}, host cores "
              f"{cores})")
        failures += 0 if ok else 1
    return checked, failures


def find_keys(node, key, out):
    """Collect every value stored under `key` anywhere in the tree."""
    if isinstance(node, dict):
        if key in node:
            out.append(node[key])
        for value in node.values():
            find_keys(value, key, out)
    elif isinstance(node, list):
        for value in node:
            find_keys(value, key, out)


def check_require_zero(current, keys):
    """Enforce that every occurrence of each key is exactly 0 (and
    that the key exists at all). Returns (checked, failures)."""
    checked = failures = 0
    for key in keys:
        values = []
        find_keys(current, key, values)
        checked += 1
        if not values:
            print(f"FAIL require-zero {key}: key absent from the "
                  f"current run (the bench stopped reporting it?)")
            failures += 1
            continue
        bad = [v for v in values if v != 0]
        ok = not bad
        print(f"{'ok  ' if ok else 'FAIL'} require-zero {key}: "
              f"{len(values)} occurrence(s), "
              f"{'all 0' if ok else f'nonzero values {bad}'}")
        failures += 0 if ok else 1
    return checked, failures


def parse_min_rates(specs):
    """['ingest_reports_per_second_1t:2.0e7'] -> {key: floor}."""
    floors = {}
    for spec in specs:
        key, _, floor = spec.rpartition(":")
        if not key:
            raise SystemExit(
                f"--min-rate needs KEY:FLOOR, got {spec!r}")
        floors[key] = float(floor)
    return floors


def check_min_rates(current, floors):
    """Enforce absolute higher-is-better floors on the current run.
    Every occurrence of the key must be a number >= floor, and the
    key must occur at least once. Returns (checked, failures)."""
    checked = failures = 0
    for key, floor in floors.items():
        values = []
        find_keys(current, key, values)
        checked += 1
        if not values:
            print(f"FAIL min-rate {key}: key absent from the current "
                  f"run (the bench stopped reporting it?)")
            failures += 1
            continue
        bad = [v for v in values
               if not isinstance(v, (int, float)) or v < floor]
        ok = not bad
        print(f"{'ok  ' if ok else 'FAIL'} min-rate {key}: "
              f"{len(values)} occurrence(s) vs floor {floor:g}"
              f"{'' if ok else f', below floor: {bad}'}")
        failures += 0 if ok else 1
    return checked, failures


def check_telemetry_overhead(current, budget):
    """Enforce 0 <= telemetry_overhead_pct <= budget on the current
    run. Returns (checked, failures)."""
    if "telemetry_overhead_pct" not in current:
        return 0, 0
    pct = current["telemetry_overhead_pct"]
    ok = isinstance(pct, (int, float)) and 0.0 <= pct <= budget
    detail = "negative: bench clamp protocol missing" \
        if isinstance(pct, (int, float)) and pct < 0 \
        else f"budget {budget:g}%"
    print(f"{'ok  ' if ok else 'FAIL'} telemetry_overhead_pct: "
          f"{pct!r} ({detail})")
    return 1, 0 if ok else 1


def main():
    ap = argparse.ArgumentParser(
        description="Gate a bench JSON against a committed baseline.")
    ap.add_argument("current")
    ap.add_argument("baseline")
    ap.add_argument("--tolerance", type=float, default=0.2,
                    help="allowed fractional regression (default 0.2)")
    ap.add_argument("--skip-timing", action="store_true",
                    help="check only fingerprints (sanitizer builds)")
    ap.add_argument("--scaling-floors", default="2:1.5,4:3.0,8:5.5",
                    help="per-thread-count minimum speedup_vs_1, as "
                         "THREADS:FLOOR pairs (default "
                         "2:1.5,4:3.0,8:5.5); empty string disables")
    ap.add_argument("--min-scaling-cores", type=int, default=4,
                    help="skip all scaling floors when the current "
                         "run's host has fewer cores (default 4)")
    ap.add_argument("--telemetry-budget", type=float, default=5.0,
                    help="max allowed telemetry_overhead_pct "
                         "(default 5.0)")
    ap.add_argument("--require-zero", action="append", default=[],
                    metavar="KEY",
                    help="every occurrence of KEY in the current run "
                         "must be exactly 0 (repeatable; enforced "
                         "even with --skip-timing)")
    ap.add_argument("--min-rate", action="append", default=[],
                    metavar="KEY:FLOOR",
                    help="every occurrence of KEY in the current run "
                         "must be >= FLOOR (repeatable; absolute, "
                         "not baseline-relative; skipped with "
                         "--skip-timing)")
    args = ap.parse_args()

    with open(args.current) as f:
        current = json.load(f)
    with open(args.baseline) as f:
        baseline = json.load(f)

    findings = []
    walk(current, baseline, "", findings)

    failures = 0
    checked = 0
    for path, kind, base, cur, present in findings:
        if not present:
            print(f"FAIL {path}: present in baseline but not in the "
                  f"current run ({kind})")
            failures += 1
            continue
        if kind == "fingerprint":
            ok = cur == base
            checked += 1
            print(f"{'ok  ' if ok else 'FAIL'} {path}: "
                  f"{cur} vs baseline {base} (exact)")
            failures += 0 if ok else 1
            continue
        if args.skip_timing:
            continue
        if not isinstance(cur, (int, float)) or \
                not isinstance(base, (int, float)) or base <= 0:
            print(f"FAIL {path}: non-numeric or non-positive value "
                  f"({cur!r} vs {base!r})")
            failures += 1
            continue
        checked += 1
        ratio = cur / base
        if kind == "lower_better":
            ok = ratio <= 1.0 + args.tolerance
        else:
            ok = ratio >= 1.0 - args.tolerance
        print(f"{'ok  ' if ok else 'FAIL'} {path}: {cur:g} vs "
              f"baseline {base:g} ({ratio:.2f}x, "
              f"{'lower' if kind == 'lower_better' else 'higher'} "
              f"is better, tolerance {args.tolerance:.0%})")
        failures += 0 if ok else 1

    zero_checked, zero_failed = check_require_zero(
        current, args.require_zero)
    checked += zero_checked
    failures += zero_failed

    if not args.skip_timing:
        scaling_checked, scaling_failed = check_scaling(
            current, parse_floors(args.scaling_floors),
            args.min_scaling_cores)
        checked += scaling_checked
        failures += scaling_failed
        overhead_checked, overhead_failed = check_telemetry_overhead(
            current, args.telemetry_budget)
        checked += overhead_checked
        failures += overhead_failed
        rate_checked, rate_failed = check_min_rates(
            current, parse_min_rates(args.min_rate))
        checked += rate_checked
        failures += rate_failed

    if checked == 0:
        print("FAIL: no gated metrics found -- wrong file pair?")
        return 1
    print(f"\n{checked} metrics checked, {failures} failures")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
