#!/usr/bin/env python3
"""Perf-regression gate over the BENCH_*.json side-channel files.

Compares a freshly produced bench JSON against a committed baseline
(bench/baselines/) and fails when performance regressed beyond the
tolerance or when a determinism fingerprint moved at all:

 - keys named "fingerprint" must match the baseline bit for bit
   (a mismatch is a correctness bug, never a perf matter);
 - "ns_per_*" keys are lower-is-better timings, gated at
   current <= baseline * (1 + tolerance);
 - "reports_per_second" keys are higher-is-better throughputs, gated
   at current >= baseline * (1 - tolerance).

Being faster than the baseline never fails the gate; refresh the
baseline (regenerate the JSON on the reference machine and commit it)
when an intentional improvement should tighten it. Structural drift --
a gated key present in the baseline but missing from the current run --
fails loudly, so a bench cannot silently stop reporting a metric.

Usage:
    check_bench_regression.py CURRENT BASELINE [--tolerance 0.2]
                              [--skip-timing]

--skip-timing checks only the fingerprints; sanitizer and
scalar-fallback builds use it, where timings are meaningless but the
merged-report bits must still match the committed baseline exactly.
"""

import argparse
import json
import sys


def walk(current, baseline, path, findings):
    """Recursively pair up gated keys of the two JSON trees."""
    if isinstance(baseline, dict):
        if not isinstance(current, dict):
            findings.append((path, "shape", None, None, False))
            return
        for key, base_val in baseline.items():
            sub = f"{path}.{key}" if path else key
            if key == "fingerprint" or key.startswith("ns_per_") or \
                    key == "reports_per_second":
                if key not in current:
                    findings.append((sub, "missing", base_val, None,
                                     False))
                else:
                    findings.append((sub, kind_of(key), base_val,
                                     current[key], True))
            elif key in current:
                walk(current[key], base_val, sub, findings)
    elif isinstance(baseline, list) and isinstance(current, list):
        for i, (cur, base) in enumerate(zip(current, baseline)):
            walk(cur, base, f"{path}[{i}]", findings)


def kind_of(key):
    if key == "fingerprint":
        return "fingerprint"
    if key.startswith("ns_per_"):
        return "lower_better"
    return "higher_better"


def main():
    ap = argparse.ArgumentParser(
        description="Gate a bench JSON against a committed baseline.")
    ap.add_argument("current")
    ap.add_argument("baseline")
    ap.add_argument("--tolerance", type=float, default=0.2,
                    help="allowed fractional regression (default 0.2)")
    ap.add_argument("--skip-timing", action="store_true",
                    help="check only fingerprints (sanitizer builds)")
    args = ap.parse_args()

    with open(args.current) as f:
        current = json.load(f)
    with open(args.baseline) as f:
        baseline = json.load(f)

    findings = []
    walk(current, baseline, "", findings)

    failures = 0
    checked = 0
    for path, kind, base, cur, present in findings:
        if not present:
            print(f"FAIL {path}: present in baseline but not in the "
                  f"current run ({kind})")
            failures += 1
            continue
        if kind == "fingerprint":
            ok = cur == base
            checked += 1
            print(f"{'ok  ' if ok else 'FAIL'} {path}: "
                  f"{cur} vs baseline {base} (exact)")
            failures += 0 if ok else 1
            continue
        if args.skip_timing:
            continue
        if not isinstance(cur, (int, float)) or \
                not isinstance(base, (int, float)) or base <= 0:
            print(f"FAIL {path}: non-numeric or non-positive value "
                  f"({cur!r} vs {base!r})")
            failures += 1
            continue
        checked += 1
        ratio = cur / base
        if kind == "lower_better":
            ok = ratio <= 1.0 + args.tolerance
        else:
            ok = ratio >= 1.0 - args.tolerance
        print(f"{'ok  ' if ok else 'FAIL'} {path}: {cur:g} vs "
              f"baseline {base:g} ({ratio:.2f}x, "
              f"{'lower' if kind == 'lower_better' else 'higher'} "
              f"is better, tolerance {args.tolerance:.0%})")
        failures += 0 if ok else 1

    if checked == 0:
        print("FAIL: no gated metrics found -- wrong file pair?")
        return 1
    print(f"\n{checked} metrics checked, {failures} failures")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
